#include "crawler/incremental_crawler.h"

#include <algorithm>
#include <chrono>
#include <unordered_map>
#include <utility>
#include <vector>

#include "crawler/snapshot.h"
#include "serving/view_builder.h"
#include "util/hash.h"

namespace webevo::crawler {

IncrementalCrawler::IncrementalCrawler(
    simweb::SimulatedWeb* web, const IncrementalCrawlerConfig& config)
    : web_(web),
      config_(config),
      collection_(config.collection_capacity, config.crawl_parallelism,
                  config.store),
      all_urls_(config.crawl_parallelism, config.store, "allurls"),
      coll_urls_(config.crawl_parallelism),
      engine_(web, config.crawl, config.crawl_parallelism,
              config.retained_views),
      update_module_([&] {
        UpdateModuleConfig u = config.update;
        u.crawl_budget_pages_per_day = config.crawl_rate_pages_per_day;
        // The module's state shards must match the engine's ownership
        // mapping: the apply passes call OnCrawled/Forget
        // concurrently, one worker per engine shard.
        u.num_shards = config.crawl_parallelism;
        return u;
      }()),
      ranking_module_(config.ranking) {
  pending_shards_.resize(
      static_cast<std::size_t>(collection_.num_shards()));
  site_failure_shards_.resize(
      static_cast<std::size_t>(collection_.num_shards()));
  url_failure_shards_.resize(
      static_cast<std::size_t>(collection_.num_shards()));
  site_defense_shards_.resize(
      static_cast<std::size_t>(collection_.num_shards()));
  if (config_.checkpoint_incremental) EnableDeltaTracking();
}

void IncrementalCrawler::EnableDeltaTracking() {
  delta_tracking_ = true;
  collection_.EnableDirtyTracking();
  all_urls_.EnableDirtyTracking();
  update_module_.EnableDirtyTracking();
  if (web_ != nullptr) web_->EnableDirtyTracking();
}

Status IncrementalCrawler::Bootstrap(double t) {
  if (bootstrapped_) {
    return Status::FailedPrecondition("already bootstrapped");
  }
  if (config_.crawl_rate_pages_per_day <= 0.0) {
    return Status::InvalidArgument("crawl rate must be positive");
  }
  now_ = t;
  next_refine_ = t + config_.refine_interval_days;
  next_rebalance_ = t + config_.rebalance_interval_days;
  next_sample_ = t;
  for (uint32_t s = 0; s < web_->num_sites(); ++s) {
    simweb::Url root = web_->RootUrl(s);
    all_urls_.Add(root, t);
    coll_urls_.Schedule(root, t);
    MarkFrontierDirty(root);
  }
  bootstrapped_ = true;
  return Status::Ok();
}

std::size_t IncrementalCrawler::PendingTotal() const {
  std::size_t total = 0;
  for (const auto& shard : pending_shards_) total += shard.size();
  return total;
}

void IncrementalCrawler::RunRefinement() {
  RefinementResult refinement =
      ranking_module_.Refine(all_urls_, collection_);
  std::size_t pending = PendingTotal();
  for (const simweb::Url& url : refinement.admissions) {
    // The RankingModule only knows collection occupancy; respect the
    // in-flight admissions too so the collection never over-admits.
    if (collection_.size() + pending >= collection_.capacity()) {
      break;
    }
    if (!coll_urls_.Contains(url)) {
      coll_urls_.ScheduleFront(url);
      PendingInsert(url);
      MarkFrontierDirty(url);
      ++pending;
    }
  }
  for (const Replacement& r : refinement.replacements) {
    Status st = collection_.Remove(r.discard);
    if (st.ok()) {
      Status unqueue = coll_urls_.Remove(r.discard);
      (void)unqueue;  // may already be popped
      update_module_.Forget(r.discard);
      coll_urls_.ScheduleFront(r.crawl);
      MarkFrontierDirty(r.discard);
      MarkFrontierDirty(r.crawl);
      ++stats_.replacements_executed;
    }
  }
  // Refresh the importance hints the UpdateModule may weigh.
  collection_.ForEach([&](const CollectionEntry& entry) {
    update_module_.SetImportance(entry.url, entry.importance);
  });
}

void IncrementalCrawler::ApplyBatch(
    const std::vector<PlannedFetch>& plan,
    std::vector<StatusOr<simweb::FetchResult>>& outcomes,
    const std::vector<double>& retry_at, double batch_end,
    std::vector<PendingRetry>& retries) {
  if (plan.empty()) return;
  auto apply_begin = std::chrono::steady_clock::now();

  // ---- Lease grant (serial coordinator). Every shard's lease carries
  // the batch's whole frozen admission budget R = capacity - size -
  // pending as an optimistic ceiling: a shard's local greedy fill then
  // admits a superset of what the serial frozen-budget greedy would
  // admit from its stream, so the settle only ever revokes (in global
  // stream order), never retro-admits. Inserts may overdraw capacity
  // (bounded by the shard's slot count); the settle evicts the
  // canonical victims.
  const std::size_t size_at_entry = collection_.size();
  const std::size_t occupied = size_at_entry + PendingTotal();
  const std::size_t admit_budget =
      occupied < collection_.capacity() ? collection_.capacity() - occupied
                                        : 0;

  // ---- Outcome pass: shard-local, parallel. Each worker walks its
  // own shard's outcomes in slot order and mutates only the state its
  // sites own: in-place collection updates, checksum compares, dead
  // purges + AllUrls tombstones, OnCrawled visit records (global
  // budget quantities are frozen between barriers). Everything the
  // admission stream needs is queued as effects.
  const auto shards = static_cast<std::size_t>(collection_.num_shards());
  std::vector<std::vector<std::size_t>> by_shard(shards);
  for (std::size_t i = 0; i < plan.size(); ++i) {
    by_shard[plan[i].shard].push_back(i);
  }
  std::vector<ShardApplyResult> deltas(shards);
  auto outcome_pass = [&](std::size_t s) {
    auto begin = std::chrono::steady_clock::now();
    ShardApplyResult& out = deltas[s];
    out.effects.reserve(by_shard[s].size());
    for (std::size_t i : by_shard[s]) {
      const simweb::Url& url = plan[i].url;
      const double at = plan[i].at;
      ++out.crawls;
      ApplyEffect effect;
      effect.slot = i;
      effect.url = url;
      effect.at = at;
      StatusOr<simweb::FetchResult>& result = outcomes[i];
      if (!result.ok()) {
        const StatusCode code = result.status().code();
        if (code == StatusCode::kFailedPrecondition) {
          // Politeness rejection: the page is fine, the site just
          // needs a breather. The per-shard retry lane captured the
          // earliest polite time at the attempt itself; the admission
          // pass decides whether that window reopens inside this
          // batch.
          ++out.politeness_retries;
          effect.kind = ApplyEffect::Kind::kRetry;
          effect.when = retry_at[i];
        } else if (code == StatusCode::kUnavailable ||
                   code == StatusCode::kDeadlineExceeded) {
          // Classified failure (transient error or timeout): never
          // change evidence — an unreachable page is not an unchanged
          // page — so the estimators and last_visit stay untouched.
          ++out.fetch_failures;
          if (code == StatusCode::kUnavailable) {
            ++out.transient_errors;
          } else {
            ++out.timeout_errors;
          }
          update_module_.OnFetchFailed(url, at);
          auto& url_fails = url_failure_shards_[s];
          const uint32_t fails = ++url_fails[url];
          SiteFailureState& site_state =
              site_failure_shards_[s][url.site];
          if (!site_state.rng_init) {
            site_state.backoff =
                Rng(HashCombine(config_.fault_backoff_seed, url.site));
            site_state.rng_init = true;
          }
          ++site_state.consecutive;
          if (fails >= config_.fault_url_retire_failures) {
            // Dead-after-K retirement: the crawler gives up on this
            // URL through the dead-page path (purge + tombstone), but
            // the ledger keeps it distinct from genuine 404 removals.
            url_fails.erase(url);
            if (collection_.shard(s).Remove(url).ok()) {
              update_module_.Forget(url);
              effect.purged = true;
            }
            Status mark = all_urls_.MarkDead(url);
            (void)mark;
            ++out.urls_retired;
            effect.kind = ApplyEffect::Kind::kDead;
          } else {
            // Bounded exponential backoff with jitter from the site's
            // own lane; the quarantine floor (set when the breaker
            // trips, here or on an earlier failure) dominates.
            ++out.failure_retries;
            const uint32_t exponent =
                std::min(site_state.consecutive, 16u) - 1;
            const double delay =
                config_.fault_backoff_base_days *
                static_cast<double>(uint64_t{1} << exponent) *
                (1.0 + config_.fault_backoff_jitter *
                           site_state.backoff.NextDouble());
            effect.kind = ApplyEffect::Kind::kFailed;
            effect.backoff_delay = delay;
            effect.when = at + delay;
            if (config_.fault_quarantine_threshold > 0 &&
                site_state.consecutive >=
                    config_.fault_quarantine_threshold) {
              site_state.quarantined_until =
                  at + config_.fault_quarantine_days;
              site_state.consecutive = 0;
              effect.quarantine = true;
              effect.quarantine_until = site_state.quarantined_until;
              ++out.sites_quarantined;
            }
            if (effect.when < site_state.quarantined_until) {
              effect.when = site_state.quarantined_until;
            }
          }
        } else {
          // Dead page (Section 5.1 goal 2: pages are constantly
          // removed; the collection must track that). Purge and
          // tombstone right here — both live in this shard — so the
          // admission stream sees the death before any later link to
          // the URL. A 404 is successful *contact* with the server, so
          // it also resets the site's circuit breaker.
          auto site_it = site_failure_shards_[s].find(url.site);
          if (site_it != site_failure_shards_[s].end()) {
            site_it->second.consecutive = 0;
          }
          url_failure_shards_[s].erase(url);
          if (collection_.shard(s).Remove(url).ok()) {
            update_module_.Forget(url);
            ++out.dead_pages_removed;
            effect.purged = true;
          }
          Status mark = all_urls_.MarkDead(url);
          (void)mark;
          effect.kind = ApplyEffect::Kind::kDead;
        }
        out.effects.push_back(std::move(effect));
        continue;
      }

      // Successful contact resets the site's circuit breaker and the
      // URL's retirement count. The backoff RNG lane stays where it is
      // (its position is part of the deterministic failure history).
      {
        auto site_it = site_failure_shards_[s].find(url.site);
        if (site_it != site_failure_shards_[s].end()) {
          site_it->second.consecutive = 0;
        }
        url_failure_shards_[s].erase(url);
      }

      CollectionEntry* existing = collection_.shard(s).FindMutable(url);
      bool changed = false;
      const bool first_visit = existing == nullptr;
      if (existing != nullptr) {
        changed = !(existing->checksum == result->checksum);
        if (changed) ++out.changes_detected;
        existing->version = result->version;
        existing->checksum = result->checksum;
        existing->crawled_at = at;
        existing->links = result->links;
        ++out.in_place_updates;
        effect.kind = ApplyEffect::Kind::kReschedule;
      } else {
        // New page: the insert draws on the shard's capacity lease in
        // the admission pass; the visit record does not.
        effect.kind = ApplyEffect::Kind::kInsert;
      }
      effect.page = result->page;
      effect.version = result->version;
      effect.checksum = result->checksum;
      effect.when = update_module_.OnCrawled(
          url, at, changed, first_visit,
          /*quiet_days=*/at - result->last_modified);
      effect.links = std::move(result->links);
      out.effects.push_back(std::move(effect));
    }
    out.seconds = SecondsSince(begin);
  };
  std::vector<std::size_t> busy;
  for (std::size_t s = 0; s < shards; ++s) {
    if (!by_shard[s].empty()) busy.push_back(s);
  }
  engine_.threads().RunForIndices(busy, outcome_pass);

  // ---- Serial scatter: reassemble the global slot order (each slot
  // yields exactly one effect), grant the seq lanes — slot i's lane is
  // [lane_base[i], lane_base[i] + 1 + nlinks(i)), a pure function of
  // slot order — and bucket the discovered links by the *target*
  // site's owner shard, (slot, position) order within each bucket,
  // each link carrying its lane seq.
  std::vector<ApplyEffect*> ordered(plan.size(), nullptr);
  for (ShardApplyResult& delta : deltas) {
    for (ApplyEffect& e : delta.effects) ordered[e.slot] = &e;
  }
  const uint64_t seq_base = coll_urls_.next_seq();
  std::vector<uint64_t> lane_base(plan.size(), 0);
  struct LinkItem {
    const simweb::Url* url;
    double at;
    uint32_t slot;
    uint32_t pos;
    uint64_t seq;
  };
  std::vector<std::vector<LinkItem>> links_of(shards);
  uint64_t lane = seq_base;
  for (std::size_t i = 0; i < plan.size(); ++i) {
    lane_base[i] = lane;
    const ApplyEffect& e = *ordered[i];
    lane += 1 + static_cast<uint64_t>(e.links.size());
    for (std::size_t p = 0; p < e.links.size(); ++p) {
      const simweb::Url& link = e.links[p];
      links_of[collection_.ShardOf(link.site)].push_back(
          LinkItem{&link, e.at, static_cast<uint32_t>(i),
                   static_cast<uint32_t>(p), lane_base[i] + 1 + p});
    }
  }
  const uint64_t seq_width = lane - seq_base;

  // ---- Admission pass: owner-shard, parallel. Each shard walks the
  // global-slot-ordered merge of its own slots' effects and the link
  // items targeting its sites — every per-URL structure (collection
  // shard, frontier shard, AllUrls shard, pending set, politeness
  // clock) is owned by this shard, so the walk reproduces the serial
  // admission stream for its URLs exactly, and the lease gates the
  // only global quantity (the admission budget).
  std::vector<ShardAdmitResult> admits(shards);
  auto admission_pass = [&](std::size_t t) {
    auto begin = std::chrono::steady_clock::now();
    ShardAdmitResult& out = admits[t];
    auto& pending = pending_shards_[t];
    Collection& coll = collection_.shard(t);
    const std::vector<std::size_t>& slots = by_shard[t];
    const std::vector<LinkItem>& links = links_of[t];
    std::size_t admitted_count = 0;
    std::size_t si = 0, li = 0;
    while (si < slots.size() || li < links.size()) {
      // Stream order: the effect of slot i precedes the links of slot
      // i (an insert precedes its own page's discoveries), and both
      // precede everything of slot i+1.
      if (li >= links.size() ||
          (si < slots.size() && slots[si] <= links[li].slot)) {
        ApplyEffect& e = *ordered[slots[si]];
        const auto slot = static_cast<uint32_t>(slots[si]);
        ++si;
        // Settle this slot's in-flight admission exactly at its own
        // slot, before any re-admission below.
        pending.erase(e.url);
        switch (e.kind) {
          case ApplyEffect::Kind::kRetry: {
            if (!coll.Contains(e.url)) pending.insert(e.url);
            const double polite =
                engine_.pool().NextAllowedTime(e.url.site);
            if (polite < batch_end) {
              // The polite window reopens inside this batch: retire
              // the retry now (RunUntil's retry rounds) instead of
              // deferring a whole batch.
              out.retries.push_back(
                  PendingRetry{e.url, static_cast<uint32_t>(t), slot});
            } else {
              coll_urls_.ScheduleLane(t, e.url, e.when, lane_base[slot]);
            }
            break;
          }
          case ApplyEffect::Kind::kDead:
            break;  // purged + tombstoned in the outcome pass
          case ApplyEffect::Kind::kFailed: {
            // Backoff reschedule: the URL keeps its place (and its
            // in-flight reservation when not yet in the collection —
            // same accounting as a politeness retry). A tripped
            // breaker then floors *every* frontier entry of the site
            // at the quarantine horizon; this shard owns the site, so
            // the walk is race-free and stream-deterministic.
            if (!coll.Contains(e.url)) pending.insert(e.url);
            coll_urls_.ScheduleLane(t, e.url, e.when, lane_base[slot]);
            if (e.quarantine) {
              coll_urls_.RescheduleSiteNotBefore(e.url.site,
                                                e.quarantine_until);
            }
            break;
          }
          case ApplyEffect::Kind::kReschedule: {
            coll_urls_.ScheduleLane(t, e.url, e.when, lane_base[slot]);
            break;
          }
          case ApplyEffect::Kind::kInsert: {
            CollectionEntry entry;
            entry.url = e.url;
            entry.page = e.page;
            entry.version = e.version;
            entry.checksum = e.checksum;
            entry.crawled_at = e.at;
            entry.links = e.links;
            collection_.InsertOverdraft(t, std::move(entry));
            e.inserted = true;
            if (const AllUrls::UrlInfo* info = all_urls_.Find(e.url)) {
              e.first_seen_valid = true;
              e.first_seen = info->first_seen;
            }
            out.insert_slots.push_back(slot);
            coll_urls_.ScheduleLane(t, e.url, e.when, lane_base[slot]);
            break;
          }
        }
        continue;
      }
      const LinkItem& item = links[li];
      ++li;
      // Discovery note and admission dedup off one hash probe. Links
      // to URLs purged or tombstoned this batch (outcome pass) are
      // never re-admitted.
      const AllUrls::UrlInfo& info =
          all_urls_.NoteInLink(*item.url, item.at);
      if (admitted_count >= admit_budget || info.dead) continue;
      if (config_.defense_enabled) {
        // Diminishing-returns gate: links into a throttled or
        // quarantined site are noted (the in-link count above) but
        // never admitted — a collapsed-yield site does not get to
        // grow the frontier (that is exactly a spider trap's attack),
        // until a healthy window resets its throttle level. The
        // defense state is owned by this shard and mutated only at
        // the serial settle, so the read sees the previous batch's
        // verdicts — frozen, race-free, shard-count independent.
        auto defense_it = site_defense_shards_[t].find(item.url->site);
        if (defense_it != site_defense_shards_[t].end() &&
            (defense_it->second.quarantined ||
             defense_it->second.throttle_level > 0 ||
             defense_it->second.suppressed_total >=
                 config_.defense_link_spam_threshold)) {
          continue;
        }
      }
      if (coll.Contains(*item.url) || coll_urls_.Contains(*item.url)) {
        continue;
      }
      coll_urls_.ScheduleLane(t, *item.url, item.at, item.seq);
      const bool fresh_pending = pending.insert(*item.url).second;
      out.admitted.push_back(AdmissionRef{item.slot, item.pos});
      out.admitted_urls.push_back(item.url);
      out.admitted_seqs.push_back(item.seq);
      out.admitted_fresh_pending.push_back(fresh_pending ? 1 : 0);
      ++admitted_count;
    }
    out.seconds = SecondsSince(begin);
  };
  std::vector<std::size_t> admit_busy;
  for (std::size_t t = 0; t < shards; ++t) {
    if (!by_shard[t].empty() || !links_of[t].empty()) {
      admit_busy.push_back(t);
    }
  }
  engine_.threads().RunForIndices(admit_busy, admission_pass);

  // ---- Settle: the shrunken serial barrier. Re-sync the cached
  // global size, reconcile the leases, evict the capacity overdraft
  // canonically, advance the seq counter past the lane grant, and
  // replay the insert ledger in slot order.
  auto barrier_begin = std::chrono::steady_clock::now();
  collection_.ReconcileSize();

  // Lease settlement: the first `admit_budget` admissions in global
  // (slot, pos) order stand; the optimistic overdraft is revoked.
  std::vector<std::vector<AdmissionRef>> admitted_refs(shards);
  std::size_t total_admitted = 0;
  for (std::size_t t = 0; t < shards; ++t) {
    admitted_refs[t] = std::move(admits[t].admitted);
    total_admitted += admitted_refs[t].size();
  }
  std::vector<RevokedAdmission> revoked =
      SettleAdmissionLease(admitted_refs, admit_budget);
  if (!revoked.empty()) {
    // Undo only what each admission still owns: a later effect for
    // the same URL in the stream (a slot reschedule, a retry's
    // reservation) supersedes it, and the serial reference — which
    // never admitted past the budget — keeps that later state. The
    // frontier entry carries its lane seq as the ownership token; for
    // the pending reservation, ownership passed to any later slot of
    // the same URL (its settle-and-reinsert is definitive).
    std::unordered_map<simweb::Url, std::size_t, simweb::UrlHash> slot_of;
    slot_of.reserve(plan.size());
    for (std::size_t i = 0; i < plan.size(); ++i) {
      slot_of.emplace(plan[i].url, i);
    }
    for (const RevokedAdmission& r : revoked) {
      const ShardAdmitResult& a = admits[r.shard];
      const simweb::Url& url = *a.admitted_urls[r.index];
      Status unqueue =
          coll_urls_.RemoveIfSeq(url, a.admitted_seqs[r.index]);
      (void)unqueue;
      if (a.admitted_fresh_pending[r.index] == 0) continue;
      auto it = slot_of.find(url);
      const bool later_effect =
          it != slot_of.end() &&
          it->second > admitted_refs[r.shard][r.index].slot;
      if (!later_effect) pending_shards_[r.shard].erase(url);
    }
  }
  const std::size_t kept_admissions = total_admitted - revoked.size();
  stats_.lease_budget_granted += admit_budget;
  stats_.lease_admissions += kept_admissions;

  // Capacity settle: the insert overdraft evicts the globally worst
  // entries, per-shard nominations merged in canonical
  // BetterEvictionVictim order (Algorithm 5.1 steps [7]-[8], batched).
  const std::size_t overdraft =
      collection_.size() > collection_.capacity()
          ? collection_.size() - collection_.capacity()
          : 0;
  if (overdraft > 0) {
    std::vector<simweb::Url> victims =
        collection_.CollectOverdraftVictims(&engine_.threads());
    for (const simweb::Url& victim : victims) {
      Status unqueue = coll_urls_.Remove(victim);
      (void)unqueue;
      update_module_.Forget(victim);
      Status removed = collection_.Remove(victim);
      (void)removed;
      MarkFrontierDirty(victim);
      ++stats_.pages_evicted;
    }
  }

  // ---- Defense settle (serial): the adversarial-web layer. Walk the
  // batch's successful fetches in slot order, claiming each content
  // fingerprint in the AllUrls registry — the first fetch of a body in
  // global slot order is its canonical URL, a pure function of the
  // simulation, so N=1 and N=8 crown the same winner. A fetch whose
  // fingerprint another URL already owns is a wasted fetch (counted
  // with the defense on or off); with the defense on it is also acted
  // upon: re-homed when the owner is a retained page on a presumed-dead
  // site (migration-following, estimator carried over), suppressed
  // otherwise (mirror dedup — duplicate content indexed at most once).
  // Then the per-site diminishing-returns windows are evaluated in
  // ascending site order: a site whose fetches are almost all
  // duplicate content is frontier-throttled with an exponential floor
  // and eventually trap-quarantined (sticky; its links stop being
  // admitted). Sites serving their own content — changed or not —
  // never trip the throttle; spacing unchanged revisits is the revisit
  // scheduler's job, not the defense's.
  {
    const double batch_time = ordered.back()->at;
    std::set<uint32_t> defense_touched;
    // Cuts a convicted site's flood backlog: every queued URL of the
    // site that is not a retained collection entry was admitted on the
    // trap's own say-so and would only ever fetch duplicate content —
    // drop it now rather than paying one wasted fetch apiece to find
    // out. Serial settle, canonical order: shard-count free.
    auto purge_unretained = [&](uint32_t site) {
      std::set<simweb::Url, simweb::UrlIdentityLess> site_urls;
      coll_urls_.AppendSiteUrls(site, &site_urls);
      auto& site_pending = pending_shards_[collection_.ShardOf(site)];
      for (const simweb::Url& u : site_urls) {
        if (collection_.Contains(u)) continue;
        Status dropped = coll_urls_.Remove(u);
        (void)dropped;
        site_pending.erase(u);
        MarkFrontierDirty(u);
      }
    };
    for (ApplyEffect* pe : ordered) {
      const ApplyEffect& e = *pe;
      if (e.kind != ApplyEffect::Kind::kReschedule &&
          e.kind != ApplyEffect::Kind::kInsert) {
        continue;
      }
      all_urls_.ClaimFingerprint(e.checksum, e.url);
      const simweb::Url owner = *all_urls_.FingerprintOwner(e.checksum);
      // Fresh = the fetched content is this URL's own (it owns the
      // fingerprint). Unchanged revisits still count as fresh: the
      // yield window measures the duplicate-content share, so honest
      // sites never trip the throttle no matter how static they are.
      bool fresh = owner == e.url;
      if (!fresh) {
        ++stats_.wasted_fetches;
        if (config_.defense_enabled) {
          // Presumed-dead test, from the failure pipeline's own state:
          // the owner's site tripped its circuit breaker and has not
          // re-established contact (still quarantined, or failing
          // again since). Pure observation of PR 7 state — never the
          // web's oracle.
          const auto& fail_shard =
              site_failure_shards_[collection_.ShardOf(owner.site)];
          auto fit = fail_shard.find(owner.site);
          const bool presumed_dead =
              fit != fail_shard.end() &&
              fit->second.quarantined_until > 0.0 &&
              (fit->second.quarantined_until >= e.at ||
               fit->second.consecutive > 0);
          if (presumed_dead && collection_.Contains(owner)) {
            // Migration-following: the content moved here; re-home the
            // retained entry instead of relearning its change rate.
            Status removed = collection_.Remove(owner);
            (void)removed;
            Status unqueue = coll_urls_.Remove(owner);
            (void)unqueue;
            update_module_.CarryEstimator(owner, e.url);
            Status tomb = all_urls_.MarkDead(owner);
            (void)tomb;
            all_urls_.ReassignFingerprint(e.checksum, e.url);
            MarkFrontierDirty(owner);
            ++stats_.pages_migrated;
            fresh = true;
          } else if (presumed_dead) {
            // The dead site's copy was already retired: adopt the new
            // home without a move.
            all_urls_.ReassignFingerprint(e.checksum, e.url);
            fresh = true;
          } else {
            // Mirror dedup: the canonical copy is alive elsewhere;
            // suppress this URL (tombstoned so stale links cannot
            // resurrect it).
            Status removed = collection_.Remove(e.url);
            (void)removed;
            Status unqueue = coll_urls_.Remove(e.url);
            (void)unqueue;
            update_module_.Forget(e.url);
            Status tomb = all_urls_.MarkDead(e.url);
            (void)tomb;
            MarkFrontierDirty(e.url);
            ++stats_.duplicate_urls_suppressed;
            SiteDefenseState& sd =
                site_defense_shards_[collection_.ShardOf(e.url.site)]
                                    [e.url.site];
            ++sd.suppressed_total;
            // Crossing the link-spam bar is a throttle event in the
            // ledger (the site just lost admission for good) and also
            // forfeits the flood already in the queue. suppressed_total
            // only ever grows, so the crossing fires exactly once.
            if (sd.suppressed_total ==
                config_.defense_link_spam_threshold) {
              ++stats_.trap_sites_throttled;
              purge_unretained(e.url.site);
            }
          }
        }
      }
      if (config_.defense_enabled) {
        SiteDefenseState& d =
            site_defense_shards_[collection_.ShardOf(e.url.site)]
                                [e.url.site];
        ++d.window_fetches;
        if (fresh) ++d.window_fresh;
        defense_touched.insert(e.url.site);
      }
    }
    for (uint32_t site : defense_touched) {
      SiteDefenseState& d =
          site_defense_shards_[collection_.ShardOf(site)][site];
      if (d.window_fetches <
          static_cast<uint64_t>(config_.defense_yield_window)) {
        continue;
      }
      const double yield = static_cast<double>(d.window_fresh) /
                           static_cast<double>(d.window_fetches);
      d.window_fetches = 0;
      d.window_fresh = 0;
      if (yield >= config_.defense_min_yield) {
        // Healthy windows decay the level one step rather than
        // resetting it: a trap that alternates flooding with draining
        // its backlog ratchets up to quarantine instead of oscillating
        // (each reset would re-open link admission for another flood).
        if (d.throttle_level > 0) --d.throttle_level;
        continue;
      }
      ++d.throttle_level;
      if (d.throttle_level == 1) ++stats_.trap_sites_throttled;
      const uint32_t exponent = std::min(d.throttle_level, 16u) - 1;
      double floor = batch_time +
                     config_.defense_throttle_base_days *
                         static_cast<double>(uint64_t{1} << exponent);
      if (!d.quarantined &&
          d.throttle_level >= config_.defense_quarantine_level) {
        d.quarantined = true;
        d.quarantined_until = batch_time + config_.defense_quarantine_days;
        purge_unretained(site);
      }
      if (d.quarantined && d.quarantined_until > floor) {
        floor = d.quarantined_until;
      }
      coll_urls_.RescheduleSiteNotBefore(site, floor);
      // The floor walk moves entries no effect names; the post-settle
      // site content is shard-count independent, so record it whole
      // (frontier-ledger rule (5)).
      if (delta_tracking_) {
        coll_urls_.AppendSiteUrls(site, &frontier_dirty_);
      }
    }
  }

  // Incremental-checkpoint frontier ledger: record, at the serial
  // barrier, every URL whose frontier position this batch may have
  // moved. The marked *set* must be a pure function of the simulation
  // (segments are byte-compared across shard counts), so the rules
  // are: (1) every effect's URL — its entry was popped by the plan and
  // possibly rescheduled; (2) admissions that *stood* — revoked ones
  // are N-layout artifacts the serial reference never made, and their
  // post-settle frontier state needs no record unless another rule
  // already names them; (3) the whole current frontier of a
  // quarantined site — the floor walk moves entries no effect names,
  // and the post-settle site content is shard-count independent;
  // (4) eviction victims (marked in the loop above); (5) URLs the
  // defense settle suppressed or re-homed, and the whole frontier of a
  // defense-throttled site (marked in the defense settle above).
  if (delta_tracking_) {
    for (const ApplyEffect* pe : ordered) {
      frontier_dirty_.insert(pe->url);
    }
    std::vector<std::vector<uint8_t>> revoked_mask(shards);
    for (std::size_t t = 0; t < shards; ++t) {
      revoked_mask[t].assign(admits[t].admitted_urls.size(), 0);
    }
    for (const RevokedAdmission& r : revoked) {
      revoked_mask[r.shard][r.index] = 1;
    }
    for (std::size_t t = 0; t < shards; ++t) {
      for (std::size_t i = 0; i < admits[t].admitted_urls.size(); ++i) {
        if (revoked_mask[t][i] == 0) {
          frontier_dirty_.insert(*admits[t].admitted_urls[i]);
        }
      }
    }
    for (const ApplyEffect* pe : ordered) {
      if (pe->quarantine) {
        coll_urls_.AppendSiteUrls(pe->url.site, &frontier_dirty_);
      }
    }
  }

  // Seq-lane settle: the counter jumps past the granted range (unused
  // lane slots stay as deterministic gaps).
  coll_urls_.SettleSeqLease(seq_base + seq_width);

  // Insert ledger replay, in slot order: pages_added, the capacity
  // milestone, and the new-page timeliness metric — the only stat
  // whose accumulation order is observable (RunningStat state is
  // checkpointed), so it is fed serially, never shard-merged.
  if (!reached_capacity_once_) {
    // Fill phase: replay the full effect stream, so dead purges free
    // occupancy at their own slots and the capacity milestone fires
    // exactly where the stream crossed it.
    std::size_t running = size_at_entry;
    for (ApplyEffect* pe : ordered) {
      const ApplyEffect& e = *pe;
      if (e.purged) {
        --running;
        continue;
      }
      if (!e.inserted) continue;
      ++stats_.pages_added;
      if (reached_capacity_once_ && e.first_seen_valid &&
          e.first_seen >= steady_since_) {
        stats_.new_page_latency_days.Add(e.at - e.first_seen);
      }
      ++running;
      if (!reached_capacity_once_ && running >= collection_.capacity()) {
        reached_capacity_once_ = true;
        steady_since_ = e.at;
      }
    }
  } else {
    // Steady state: only the inserts matter; walk just those.
    std::vector<uint32_t> insert_slots;
    for (const ShardAdmitResult& a : admits) {
      insert_slots.insert(insert_slots.end(), a.insert_slots.begin(),
                          a.insert_slots.end());
    }
    std::sort(insert_slots.begin(), insert_slots.end());
    for (uint32_t slot : insert_slots) {
      const ApplyEffect& e = *ordered[slot];
      ++stats_.pages_added;
      if (e.first_seen_valid && e.first_seen >= steady_since_) {
        stats_.new_page_latency_days.Add(e.at - e.first_seen);
      }
    }
  }

  // In-batch retries merge across shards in slot order.
  for (ShardAdmitResult& a : admits) {
    retries.insert(retries.end(), a.retries.begin(), a.retries.end());
  }
  std::sort(retries.begin(), retries.end(),
            [](const PendingRetry& a, const PendingRetry& b) {
              return a.slot < b.slot;
            });

  now_ = ordered.back()->at;
  const double barrier_seconds = SecondsSince(barrier_begin);

  // Backoff ledger replay, in slot order: like the new-page latency
  // stat, the RunningStat's accumulation order is observable through
  // the checkpoint, so it is fed serially, never shard-merged.
  for (const ApplyEffect* pe : ordered) {
    if (pe->kind == ApplyEffect::Kind::kFailed) {
      stats_.backoff_days.Add(pe->backoff_delay);
    }
  }

  // Counter deltas merge in shard index order; shard wall-clocks are
  // merged the same way (values are wall-clock, the structure is not).
  uint64_t batch_failures = 0;
  for (const ShardApplyResult& delta : deltas) {
    stats_.crawls += delta.crawls;
    stats_.in_place_updates += delta.in_place_updates;
    stats_.changes_detected += delta.changes_detected;
    stats_.politeness_retries += delta.politeness_retries;
    stats_.dead_pages_removed += delta.dead_pages_removed;
    stats_.fetch_failures += delta.fetch_failures;
    stats_.transient_errors += delta.transient_errors;
    stats_.timeout_errors += delta.timeout_errors;
    stats_.failure_retries += delta.failure_retries;
    stats_.sites_quarantined += delta.sites_quarantined;
    stats_.urls_retired += delta.urls_retired;
    batch_failures += delta.fetch_failures;
  }
  if (batch_failures > 0) engine_.RecordFetchFailures(batch_failures);
  for (std::size_t s : busy) {
    engine_.RecordApplyShardSeconds(deltas[s].seconds);
  }
  for (std::size_t t : admit_busy) {
    engine_.RecordApplyShardSeconds(admits[t].seconds);
  }
  engine_.RecordLeaseSettle(static_cast<double>(admit_budget),
                            static_cast<double>(kept_admissions),
                            static_cast<double>(revoked.size()),
                            static_cast<double>(overdraft));
  engine_.RecordApplyBarrierSeconds(barrier_seconds);
  engine_.RecordApplySeconds(SecondsSince(apply_begin));
}

Status IncrementalCrawler::RunUntil(double until) {
  if (!bootstrapped_) {
    return Status::FailedPrecondition("call Bootstrap first");
  }
  const double step = 1.0 / config_.crawl_rate_pages_per_day;
  while (now_ < until) {
    // Housekeeping due at the current time. All next_* end up > now_.
    // A due freshness sample is *deferred* on the pipelined path: the
    // serial bucket step runs here (the collection is exactly batch
    // B-1's applied state), the oracle walks fuse into this batch's
    // fetch workers, and the tracker sample settles at the apply
    // barrier — bit-identical to sampling inline, because each page's
    // oracle observation at the sample time still precedes that page's
    // fetch (same site => same shard worker, walk before fetches).
    // Except when refinement fires this same iteration: it can Remove
    // collection entries between here and the batch, which would both
    // dangle the bucketed entry pointers and change the measured set —
    // the sample must see the pre-refinement collection, so it runs
    // inline on those (rare) coinciding boundaries.
    bool measure_deferred = false;
    double sample_time = 0.0;
    StagedMeasure staged_measure;
    double measure_serial_seconds = 0.0;
    if (now_ >= next_sample_) {
      if (config_.pipeline && now_ < next_refine_) {
        auto measure_begin = std::chrono::steady_clock::now();
        sample_time = now_;
        staged_measure.Prepare(*web_, collection_, sample_time,
                               engine_.num_shards());
        measure_deferred = true;
        measure_serial_seconds = SecondsSince(measure_begin);
      } else {
        tracker_.AddSample(now_, MeasureNow().freshness);
      }
      while (next_sample_ <= now_) {
        next_sample_ += config_.freshness_sample_interval_days;
      }
    }
    if (now_ >= next_refine_) {
      RunRefinement();
      while (next_refine_ <= now_) {
        next_refine_ += config_.refine_interval_days;
      }
    }
    if (now_ >= next_rebalance_) {
      update_module_.Rebalance();
      while (next_rebalance_ <= now_) {
        next_rebalance_ += config_.rebalance_interval_days;
      }
    }

    // Re-freeze the budget-spreading page count at the serial plan
    // step, *after* housekeeping: refinement and rebalance may just
    // have forgotten or admitted pages, and the upcoming batch's
    // scheduling fallbacks should see that truth instead of a count
    // captured at the previous batch's barrier. The plan step is
    // serial, so the freeze stays a pure function of history at every
    // shard count. This is also the pipeline's page-count stage
    // boundary: the frozen count feeds only the *apply* stage's
    // scheduling (OnCrawled), never the speculative plan extraction,
    // so freezing between apply(B-1) and apply(B) is exactly the
    // sequential freeze point.
    update_module_.RefreshSchedulingPageCount();

    // Plan one engine batch of crawl slots, bounded by the next
    // housekeeping event so refinement/rebalance/sampling always see a
    // fully applied collection. The frontier extracts candidates
    // shard-parallel on the engine's worker pool and merges them
    // deterministically into slot order — unless the previous batch's
    // fetch stage already extracted them speculatively, in which case
    // PlanSlots reconciles: lanes the apply barrier left intact are
    // consumed as-is, flushed lanes re-extract, and the merge output
    // is bit-identical either way.
    const double horizon =
        std::min({next_sample_, next_refine_, next_rebalance_, until});
    auto plan_begin = std::chrono::steady_clock::now();
    ShardedFrontier::SlotPlan slot_plan =
        coll_urls_.PlanSlots(now_, horizon, step, &engine_.threads());
    engine_.SetPipelineArmed(false);  // speculation consumed or drained
    if (slot_plan.speculative) {
      engine_.RecordSpeculativePlan(
          static_cast<double>(slot_plan.spec_lanes_reused),
          static_cast<double>(slot_plan.spec_lanes_invalidated));
    }
    std::vector<PlannedFetch> plan;
    plan.reserve(slot_plan.slots.size());
    for (std::size_t i = 0; i < slot_plan.slots.size(); ++i) {
      plan.push_back(PlannedFetch{slot_plan.slots[i].url,
                                  slot_plan.slots[i].when,
                                  slot_plan.owner[i]});
    }
    // Only batches the engine also counts, so per-batch phase ratios
    // divide like for like (idle planning passes are ~free anyway).
    if (!plan.empty()) engine_.RecordPlanSeconds(SecondsSince(plan_begin));

    // Arm the next batch's speculative plan when the pipeline can see
    // across the boundary: the batch clock after B is known now
    // (slot_plan.end_time), and the next iteration's horizon is a pure
    // function of the housekeeping timers at that clock — predicted
    // here with the exact timer arithmetic the next iteration runs.
    // The speculation survives arbitrary frontier mutation in between
    // (restore-on-touch), so no housekeeping event needs to veto it;
    // a prediction mismatch merely drains and replans sequentially.
    ShardedCrawlEngine::StageHooks hooks;
    bool use_hooks = false;
    if (config_.pipeline && !plan.empty()) {
      const double t_next = slot_plan.end_time;
      if (t_next < until) {
        double ns = next_sample_, nr = next_refine_, nb = next_rebalance_;
        while (ns <= t_next) ns += config_.freshness_sample_interval_days;
        while (nr <= t_next) nr += config_.refine_interval_days;
        while (nb <= t_next) nb += config_.rebalance_interval_days;
        const double next_horizon = std::min({ns, nr, nb, until});
        if (t_next < next_horizon) {
          coll_urls_.BeginSpeculation(t_next, next_horizon, step);
          engine_.SetPipelineArmed(true);
          hooks.after_fetch = [this](std::size_t s) {
            coll_urls_.SpeculateShard(s);
          };
          use_hooks = true;
        }
      }
      if (measure_deferred) {
        hooks.before_fetch = [&staged_measure](std::size_t s) {
          staged_measure.RunShard(s);
        };
        use_hooks = true;
      }
      if (use_hooks) {
        hooks.shards.reserve(
            static_cast<std::size_t>(engine_.num_shards()));
        for (std::size_t s = 0;
             s < static_cast<std::size_t>(engine_.num_shards()); ++s) {
          hooks.shards.push_back(s);
        }
      }
    }

    std::vector<double> retry_at;
    std::vector<StatusOr<simweb::FetchResult>> outcomes =
        engine_.ExecuteBatch(plan, &retry_at,
                             use_hooks ? &hooks : nullptr);

    // Settle the deferred sample before the apply barrier: remaining
    // shard walks run serially (all done already when the hooks rode a
    // batch), the canonical ascending-site reduction is serial either
    // way, and the tracker receives exactly the sample the inline path
    // would have recorded.
    if (measure_deferred) {
      auto measure_begin = std::chrono::steady_clock::now();
      tracker_.AddSample(sample_time, staged_measure.Finish().freshness);
      engine_.RecordMeasureSeconds(measure_serial_seconds +
                                   SecondsSince(measure_begin));
    }

    std::vector<PendingRetry> retries;
    ApplyBatch(plan, outcomes, retry_at, slot_plan.end_time, retries);

    // In-batch retry rounds: rejected fetches whose polite window
    // reopens before the batch window closes are refetched now,
    // reusing their wasted slots, instead of waiting a whole batch.
    // A site may receive several polite slots per round, spaced one
    // polite delay apart — a batch dominated by one hot site retires
    // in a single round instead of spinning one-URL rounds. Retries
    // the spacing pushes past the window hand their URL to the next
    // batch at the spaced polite time; every planned retry advances
    // its site's polite clock, so the loop terminates.
    uint64_t retry_rounds = 0;
    const double delay = config_.crawl.per_site_delay_days;
    while (!retries.empty()) {
      auto round_begin = std::chrono::steady_clock::now();
      std::vector<PlannedFetch> round;
      std::unordered_map<uint32_t, uint64_t> admitted;
      for (PendingRetry& r : retries) {
        const double polite = engine_.pool().NextAllowedTime(r.url.site);
        // Intra-round spacing: the site's k-th retry this round runs k
        // polite delays after its first — exactly the cadence the
        // engine's per-site plan-order fetches keep polite.
        uint64_t& k = admitted[r.url.site];
        const double at = polite + static_cast<double>(k) * delay;
        if (at >= slot_plan.end_time) {
          // The spaced slot lands past the window: hand the URL to the
          // next batch at that (estimated) earliest polite time.
          coll_urls_.Schedule(r.url, at);
          MarkFrontierDirty(r.url);
          continue;
        }
        ++k;
        round.push_back(PlannedFetch{r.url, at, r.shard});
      }
      if (round.empty()) break;
      ++retry_rounds;
      // Each retry round is a (small) engine batch of its own; record
      // a plan sample for it so the per-phase sample counts stay one
      // per engine batch.
      engine_.RecordPlanSeconds(SecondsSince(round_begin));
      stats_.in_batch_retries += round.size();
      std::vector<double> round_retry_at;
      std::vector<StatusOr<simweb::FetchResult>> round_outcomes =
          engine_.ExecuteBatch(round, &round_retry_at);
      std::vector<PendingRetry> rejected;
      ApplyBatch(round, round_outcomes, round_retry_at,
                 slot_plan.end_time, rejected);
      retries = std::move(rejected);
    }
    // Advance the crawl clock to the batch boundary *before* any
    // checkpoint: a checkpoint must capture the post-batch clock, or a
    // resumed run would re-plan the next batch from a mid-batch slot
    // time the uninterrupted run never used.
    now_ = slot_plan.end_time;
    if (!plan.empty()) {
      // Store barrier: per-shard compaction of the paged backends
      // (no-op on memory), at the quiesced boundary where no entry
      // pointers are outstanding.
      collection_.Flush();
      all_urls_.Flush();
      // One ledger sample per planned batch: how many retry rounds it
      // took to retire the batch's politeness rejections.
      engine_.RecordRetryRounds(static_cast<double>(retry_rounds));
      ++batches_completed_;
      if (config_.publish_view_every_batches > 0 &&
          batches_completed_ % config_.publish_view_every_batches == 0) {
        // MVCC publish at the apply barrier: readers acquire the new
        // view lock-free while the next batch plans and fetches.
        PublishViewNow();
      }
      if (config_.checkpoint_every_batches > 0 &&
          batches_completed_ % config_.checkpoint_every_batches == 0) {
        // Auto-checkpoint at the batch boundary. A mid-pipeline
        // checkpoint first drains the speculation: flushed lanes
        // restore the frontier to exactly the sequential post-batch
        // state, so the checkpoint bytes are identical to the
        // non-pipelined run's and a resume rejoins the uninterrupted
        // trajectory (its first plan simply re-extracts what the
        // drained speculation had pre-popped).
        coll_urls_.DrainSpeculation();
        engine_.SetPipelineArmed(false);
        CrawlerCheckpointOptions options;
        options.include_web = config_.checkpoint_include_web;
        options.module_traffic = config_.checkpoint_module_traffic;
        Status saved =
            config_.checkpoint_incremental
                ? CheckpointIncremental(this, config_.checkpoint_path,
                                        options)
                : SaveCrawlerToFile(*this, config_.checkpoint_path,
                                    options);
        if (!saved.ok()) return saved;
      }
    }
  }
  // The loop never arms a speculation across `until` (the gate above),
  // but drain defensively so callers always get a quiescent crawler.
  coll_urls_.DrainSpeculation();
  engine_.SetPipelineArmed(false);
  return Status::Ok();
}

void IncrementalCrawler::PublishViewNow() {
  engine_.PublishView(serving::BuildBatchView(*this));
}

CollectionQuality IncrementalCrawler::MeasureNow() {
  auto measure_begin = std::chrono::steady_clock::now();
  CollectionQuality q = MeasureCollectionSharded(
      *web_, collection_, now_, engine_.threads(), engine_.num_shards());
  engine_.RecordMeasureSeconds(SecondsSince(measure_begin));
  return q;
}

}  // namespace webevo::crawler
