#include "crawler/eval.h"

namespace webevo::crawler {

CollectionQuality MeasureCollection(simweb::SimulatedWeb& web,
                                    const Collection& collection,
                                    double t) {
  CollectionQuality q;
  q.size = collection.size();
  if (q.size == 0) return q;
  double stale_age_sum = 0.0;
  std::size_t stale_with_age = 0;
  collection.ForEach([&](const CollectionEntry& entry) {
    auto version = web.OracleVersion(entry.url, t);
    if (!version.ok()) {
      ++q.dead;  // a dead page can never be fresh
      return;
    }
    if (*version == entry.version) {
      ++q.fresh;
      return;
    }
    auto changed_at = web.OracleLastChangeTime(entry.url, t);
    if (changed_at.ok()) {
      stale_age_sum += t - *changed_at;
      ++stale_with_age;
    }
  });
  q.freshness = static_cast<double>(q.fresh) / static_cast<double>(q.size);
  if (stale_with_age > 0) {
    q.mean_stale_age_days =
        stale_age_sum / static_cast<double>(stale_with_age);
  }
  return q;
}

}  // namespace webevo::crawler
