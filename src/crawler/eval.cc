#include "crawler/eval.h"

#include <algorithm>
#include <functional>
#include <vector>

namespace webevo::crawler {
namespace {

/// Per-site accumulator; doubles are summed in (slot, incarnation)
/// order within the site, so a site's partial is a pure function of its
/// entries regardless of threading.
struct SitePartial {
  std::size_t fresh = 0;
  std::size_t dead = 0;
  std::size_t stale_with_age = 0;
  double stale_age_sum = 0.0;
};

void MeasureSite(simweb::SimulatedWeb& web,
                 std::vector<const CollectionEntry*>& entries, double t,
                 SitePartial& partial) {
  std::sort(entries.begin(), entries.end(),
            [](const CollectionEntry* a, const CollectionEntry* b) {
              if (a->url.slot != b->url.slot) return a->url.slot < b->url.slot;
              return a->url.incarnation < b->url.incarnation;
            });
  for (const CollectionEntry* entry : entries) {
    auto version = web.OracleVersion(entry->url, t);
    if (!version.ok()) {
      ++partial.dead;  // a dead page can never be fresh
      continue;
    }
    if (*version == entry->version) {
      ++partial.fresh;
      continue;
    }
    auto changed_at = web.OracleLastChangeTime(entry->url, t);
    if (changed_at.ok()) {
      partial.stale_age_sum += t - *changed_at;
      ++partial.stale_with_age;
    }
  }
}

// Works for Collection and ShardedCollection alike: only size() and an
// (order-insensitive) ForEach are needed, since entries are re-bucketed
// by site before any order-dependent accumulation happens.
template <typename CollectionT>
CollectionQuality MeasureImpl(simweb::SimulatedWeb& web,
                              const CollectionT& collection, double t,
                              ThreadPool* threads, int num_shards) {
  CollectionQuality q;
  q.size = collection.size();
  if (q.size == 0) return q;

  // Bucket entries by site (cheap pointer shuffling; the oracle walks
  // below are the expensive part).
  std::vector<std::vector<const CollectionEntry*>> by_site(web.num_sites());
  std::size_t foreign = 0;  // entries from outside this web: never fresh
  collection.ForEach([&](const CollectionEntry& entry) {
    if (entry.url.site < by_site.size()) {
      by_site[entry.url.site].push_back(&entry);
    } else {
      ++foreign;
    }
  });

  const auto shards =
      static_cast<std::size_t>(std::max(1, num_shards));
  std::vector<SitePartial> partials(by_site.size());
  auto measure_shard = [&](std::size_t shard) {
    for (std::size_t site = shard; site < by_site.size(); site += shards) {
      if (by_site[site].empty()) continue;
      MeasureSite(web, by_site[site], t, partials[site]);
    }
  };
  if (threads != nullptr && shards > 1) {
    std::vector<std::function<void()>> tasks;
    tasks.reserve(shards);
    for (std::size_t shard = 0; shard < shards; ++shard) {
      tasks.push_back([&measure_shard, shard] { measure_shard(shard); });
    }
    threads->RunAndWait(std::move(tasks));
  } else {
    for (std::size_t shard = 0; shard < shards; ++shard) {
      measure_shard(shard);
    }
  }

  // Canonical reduction: ascending site order, independent of the
  // site -> shard mapping, so every shard count sums in the same order.
  double stale_age_sum = 0.0;
  std::size_t stale_with_age = 0;
  q.dead += foreign;
  for (const SitePartial& partial : partials) {
    q.fresh += partial.fresh;
    q.dead += partial.dead;
    stale_age_sum += partial.stale_age_sum;
    stale_with_age += partial.stale_with_age;
  }
  q.freshness = static_cast<double>(q.fresh) / static_cast<double>(q.size);
  if (stale_with_age > 0) {
    q.mean_stale_age_days =
        stale_age_sum / static_cast<double>(stale_with_age);
  }
  return q;
}

}  // namespace

CollectionQuality MeasureCollection(simweb::SimulatedWeb& web,
                                    const Collection& collection,
                                    double t) {
  return MeasureImpl(web, collection, t, nullptr, 1);
}

CollectionQuality MeasureCollection(simweb::SimulatedWeb& web,
                                    const ShardedCollection& collection,
                                    double t) {
  return MeasureImpl(web, collection, t, nullptr, 1);
}

CollectionQuality MeasureCollectionSharded(simweb::SimulatedWeb& web,
                                           const Collection& collection,
                                           double t, ThreadPool& threads,
                                           int num_shards) {
  return MeasureImpl(web, collection, t, &threads, num_shards);
}

CollectionQuality MeasureCollectionSharded(
    simweb::SimulatedWeb& web, const ShardedCollection& collection,
    double t, ThreadPool& threads, int num_shards) {
  return MeasureImpl(web, collection, t, &threads, num_shards);
}

}  // namespace webevo::crawler
