#include "crawler/eval.h"

#include <algorithm>
#include <functional>
#include <vector>

namespace webevo::crawler {
namespace {

void MeasureSite(simweb::SimulatedWeb& web,
                 std::vector<const CollectionEntry*>& entries, double t,
                 StagedMeasure::SitePartial& partial) {
  std::sort(entries.begin(), entries.end(),
            [](const CollectionEntry* a, const CollectionEntry* b) {
              if (a->url.slot != b->url.slot) return a->url.slot < b->url.slot;
              return a->url.incarnation < b->url.incarnation;
            });
  for (const CollectionEntry* entry : entries) {
    auto version = web.OracleVersion(entry->url, t);
    if (!version.ok()) {
      ++partial.dead;  // a dead page can never be fresh
      continue;
    }
    if (*version == entry->version) {
      ++partial.fresh;
      continue;
    }
    auto changed_at = web.OracleLastChangeTime(entry->url, t);
    if (changed_at.ok()) {
      partial.stale_age_sum += t - *changed_at;
      ++partial.stale_with_age;
    }
  }
}

// Works for Collection and ShardedCollection alike: only size() and an
// (order-insensitive) ForEach are needed, since entries are re-bucketed
// by site before any order-dependent accumulation happens. One code
// path for the serial, pool-parallel, and pipelined (StagedMeasure
// driven externally) measurements, so they can never drift apart.
template <typename CollectionT>
CollectionQuality MeasureImpl(simweb::SimulatedWeb& web,
                              const CollectionT& collection, double t,
                              ThreadPool* threads, int num_shards) {
  StagedMeasure staged;
  staged.Prepare(web, collection, t, num_shards);
  const auto shards = static_cast<std::size_t>(std::max(1, num_shards));
  if (threads != nullptr && shards > 1) {
    std::vector<std::function<void()>> tasks;
    tasks.reserve(shards);
    for (std::size_t shard = 0; shard < shards; ++shard) {
      tasks.push_back([&staged, shard] { staged.RunShard(shard); });
    }
    threads->RunAndWait(std::move(tasks));
  }
  return staged.Finish();
}

}  // namespace

template <typename CollectionT>
void StagedMeasure::PrepareImpl(simweb::SimulatedWeb& web,
                                const CollectionT& collection, double t,
                                int num_shards) {
  web_ = &web;
  t_ = t;
  shards_ = static_cast<std::size_t>(std::max(1, num_shards));
  size_ = collection.size();
  foreign_ = 0;
  prepared_ = true;
  by_site_.assign(web.num_sites(), {});
  partials_.assign(by_site_.size(), SitePartial{});
  shard_done_.assign(shards_, 0);
  // Bucket entries by site (cheap pointer shuffling; the oracle walks
  // in RunShard are the expensive part).
  collection.ForEach([&](const CollectionEntry& entry) {
    if (entry.url.site < by_site_.size()) {
      by_site_[entry.url.site].push_back(&entry);
    } else {
      ++foreign_;
    }
  });
}

void StagedMeasure::Prepare(simweb::SimulatedWeb& web,
                            const Collection& collection, double t,
                            int num_shards) {
  PrepareImpl(web, collection, t, num_shards);
}

void StagedMeasure::Prepare(simweb::SimulatedWeb& web,
                            const ShardedCollection& collection, double t,
                            int num_shards) {
  PrepareImpl(web, collection, t, num_shards);
}

void StagedMeasure::RunShard(std::size_t shard) {
  if (!prepared_ || shard >= shards_ || shard_done_[shard]) return;
  shard_done_[shard] = 1;
  for (std::size_t site = shard; site < by_site_.size(); site += shards_) {
    if (by_site_[site].empty()) continue;
    MeasureSite(*web_, by_site_[site], t_, partials_[site]);
  }
}

CollectionQuality StagedMeasure::Finish() {
  CollectionQuality q;
  q.size = size_;
  if (!prepared_) return q;
  for (std::size_t shard = 0; shard < shards_; ++shard) RunShard(shard);

  // Canonical reduction: ascending site order, independent of the
  // site -> shard mapping, so every shard count sums in the same order.
  double stale_age_sum = 0.0;
  std::size_t stale_with_age = 0;
  q.dead += foreign_;
  for (const SitePartial& partial : partials_) {
    q.fresh += partial.fresh;
    q.dead += partial.dead;
    stale_age_sum += partial.stale_age_sum;
    stale_with_age += partial.stale_with_age;
  }
  if (q.size > 0) {
    q.freshness = static_cast<double>(q.fresh) / static_cast<double>(q.size);
  }
  if (stale_with_age > 0) {
    q.mean_stale_age_days =
        stale_age_sum / static_cast<double>(stale_with_age);
  }
  prepared_ = false;
  by_site_.clear();
  partials_.clear();
  shard_done_.clear();
  web_ = nullptr;
  return q;
}

CollectionQuality MeasureCollection(simweb::SimulatedWeb& web,
                                    const Collection& collection,
                                    double t) {
  return MeasureImpl(web, collection, t, nullptr, 1);
}

CollectionQuality MeasureCollection(simweb::SimulatedWeb& web,
                                    const ShardedCollection& collection,
                                    double t) {
  return MeasureImpl(web, collection, t, nullptr, 1);
}

CollectionQuality MeasureCollectionSharded(simweb::SimulatedWeb& web,
                                           const Collection& collection,
                                           double t, ThreadPool& threads,
                                           int num_shards) {
  return MeasureImpl(web, collection, t, &threads, num_shards);
}

CollectionQuality MeasureCollectionSharded(
    simweb::SimulatedWeb& web, const ShardedCollection& collection,
    double t, ThreadPool& threads, int num_shards) {
  return MeasureImpl(web, collection, t, &threads, num_shards);
}

}  // namespace webevo::crawler
