#include "crawler/sharded_frontier.h"

#include <algorithm>
#include <limits>
#include <utility>

namespace webevo::crawler {
namespace {

// The one definition of the global pop order — earliest `when`, ties
// broken by the global sequence number (the inverse of CollUrls::Later)
// — shared by the Pop/Peek tournament and the PlanSlots merge so the
// two can never drift apart and break the bit-identical contract.
bool Earlier(const CollUrls::Entry& a, const CollUrls::Entry& b) {
  if (a.when != b.when) return a.when < b.when;
  return a.seq < b.seq;
}

constexpr uint32_t kNoShard = ~0u;

// The one tournament-tree path replay, shared by the persistent
// Pop/Peek tree (RepairAndWinner) and PlanSlots' ephemeral MergeTree:
// re-derives the winners along leaf s's path to the root, given the
// callers' notion of which shards are live and what their heads are.
// `winner` has 2*leaves slots, node i's children are 2i and 2i+1, and
// shard s sits at leaf leaves + s.
template <typename LiveFn, typename HeadFn>
void ReplayPath(std::vector<uint32_t>& winner, std::size_t leaves,
                std::size_t s, const LiveFn& live, const HeadFn& head) {
  std::size_t node = leaves + s;
  winner[node] = live(s) ? static_cast<uint32_t>(s) : kNoShard;
  for (node /= 2; node >= 1; node /= 2) {
    uint32_t a = winner[2 * node];
    uint32_t b = winner[2 * node + 1];
    if (a == kNoShard) {
      winner[node] = b;
    } else if (b == kNoShard) {
      winner[node] = a;
    } else {
      winner[node] = Earlier(head(a), head(b)) ? a : b;
    }
    if (node == 1) break;
  }
}

// Tournament tree over the per-shard candidate lists extracted by
// PlanSlots: winner() is the list with the earliest head, advance()
// consumes that head and replays its leaf-to-root path — O(log N) per
// consumed candidate instead of a linear scan over shard heads.
class MergeTree {
 public:
  explicit MergeTree(
      const std::vector<std::vector<CollUrls::Entry>>& lists)
      : lists_(lists), next_(lists.size(), 0) {
    leaves_ = 1;
    while (leaves_ < lists.size()) leaves_ *= 2;
    winner_.assign(2 * leaves_, kNoShard);
    for (std::size_t s = 0; s < lists.size(); ++s) Replay(s);
  }

  static constexpr uint32_t kNone = kNoShard;

  /// Index of the list holding the globally earliest head, or kNone.
  uint32_t winner() const { return winner_[1]; }

  const CollUrls::Entry& head(std::size_t s) const {
    return lists_[s][next_[s]];
  }

  std::size_t cursor(std::size_t s) const { return next_[s]; }

  void advance(std::size_t s) {
    ++next_[s];
    Replay(s);
  }

 private:
  void Replay(std::size_t s) {
    ReplayPath(
        winner_, leaves_, s,
        [this](std::size_t i) { return next_[i] < lists_[i].size(); },
        [this](std::size_t i) -> const CollUrls::Entry& {
          return head(i);
        });
  }

  const std::vector<std::vector<CollUrls::Entry>>& lists_;
  std::vector<std::size_t> next_;
  std::size_t leaves_ = 1;
  std::vector<uint32_t> winner_;
};

}  // namespace

ShardedFrontier::ShardedFrontier(int num_shards)
    : shards_(static_cast<std::size_t>(std::max(1, num_shards))) {
  leaves_ = 1;
  while (leaves_ < shards_.size()) leaves_ *= 2;
  winner_.assign(2 * leaves_, kNoShard);
  head_.resize(shards_.size());
  head_live_.assign(shards_.size(), 0);
  head_dirty_.assign(shards_.size(), 1);
  spec_lane_.resize(shards_.size());
  spec_valid_.assign(shards_.size(), 0);
  spec_flushed_.assign(shards_.size(), 0);
}

void ShardedFrontier::Schedule(const simweb::Url& url, double when) {
  SpecAwareSchedule(ShardOf(url.site), url, when, next_seq_++);
}

void ShardedFrontier::ScheduleFront(const simweb::Url& url) {
  // Identical arithmetic to CollUrls::ScheduleFront, with the offset
  // global to the frontier so front-inserts stay FIFO across shards.
  front_when_ += 1e-6;
  const std::size_t s = ShardOf(url.site);
  // A front key sorts before every lane entry, so the lane can never
  // survive a front insert.
  FlushSpecLane(s);
  shards_[s].ScheduleAt(url, CollUrls::kFrontBase + front_when_,
                        next_seq_++);
  head_dirty_[s] = 1;
}

Status ShardedFrontier::Remove(const simweb::Url& url) {
  const std::size_t s = ShardOf(url.site);
  if (speculating_ && spec_valid_[s]) {
    // A lane member is the url's live entry: erase it in place and top
    // the lane back up rather than invalidating the whole lane.
    std::vector<CollUrls::Entry>& lane = spec_lane_[s];
    for (auto it = lane.begin(); it != lane.end(); ++it) {
      if (it->url == url) {
        lane.erase(it);
        TopUpSpecLane(s);
        return Status::Ok();
      }
    }
  }
  Status st = shards_[s].Remove(url);
  if (st.ok()) head_dirty_[s] = 1;
  return st;
}

Status ShardedFrontier::RemoveIfSeq(const simweb::Url& url,
                                    uint64_t seq) {
  const std::size_t s = ShardOf(url.site);
  if (speculating_ && spec_valid_[s]) {
    // A lane member is the url's live entry (never also in the heap):
    // apply the seq guard to it directly, erase on a match, and top
    // the lane back up — no need to invalidate the whole lane.
    std::vector<CollUrls::Entry>& lane = spec_lane_[s];
    for (auto it = lane.begin(); it != lane.end(); ++it) {
      if (it->url != url) continue;
      if (it->seq != seq) {
        return Status::NotFound("url not queued at that seq");
      }
      lane.erase(it);
      TopUpSpecLane(s);
      return Status::Ok();
    }
  }
  Status st = shards_[s].RemoveIfSeq(url, seq);
  if (st.ok()) head_dirty_[s] = 1;
  return st;
}

void ShardedFrontier::SpecAwareSchedule(std::size_t s,
                                        const simweb::Url& url,
                                        double when, uint64_t seq) {
  if (!speculating_ || !spec_valid_[s]) {
    shards_[s].ScheduleAt(url, when, seq);
    head_dirty_[s] = 1;
    return;
  }
  std::vector<CollUrls::Entry>& lane = spec_lane_[s];
  bool was_in_lane = false;
  for (auto it = lane.begin(); it != lane.end(); ++it) {
    if (it->url == url) {
      if (when < spec_horizon_) {
        // Sub-horizon supersede of a lane member: the rare case (a
        // batch url is never in the next batch's lane) where absorb
        // bookkeeping gets subtle — rescheduling *within* the lane
        // interacts with capacity evictions in ways that can strand
        // entries. Flush: always correct, and cheap at this rate. The
        // erase-first keeps the flushed heap free of the superseded
        // key, matching the sequential move.
        lane.erase(it);
        FlushSpecLane(s);
        shards_[s].ScheduleAt(url, when, seq);
        head_dirty_[s] = 1;
        return;
      }
      lane.erase(it);  // superseded; the new key is placed below
      was_in_lane = true;
      break;
    }
  }
  if (when < spec_horizon_) {
    // Sequential ScheduleAt *moves* an existing entry, so a stale heap
    // entry of this url (necessarily after the lane) must go before
    // the url joins the lane.
    if (shards_[s].Remove(url).ok()) head_dirty_[s] = 1;
    const CollUrls::Entry e{when, seq, url};
    lane.insert(std::upper_bound(lane.begin(), lane.end(), e, Earlier),
                e);
    if (lane.size() > spec_max_slots_) {
      // Past the batch's slot capacity the extraction loop would have
      // stopped: the overflow entry belongs to the heap.
      const CollUrls::Entry& evict = lane.back();
      shards_[s].ScheduleAt(evict.url, evict.when, evict.seq);
      head_dirty_[s] = 1;
      lane.pop_back();
    }
  } else {
    shards_[s].ScheduleAt(url, when, seq);
    head_dirty_[s] = 1;
  }
  TopUpSpecLane(s);
}

void ShardedFrontier::TopUpSpecLane(std::size_t s) {
  if (!speculating_ || !spec_valid_[s]) return;
  std::vector<CollUrls::Entry>& lane = spec_lane_[s];
  while (lane.size() < spec_max_slots_) {
    auto head = shards_[s].PeekEntry();
    if (!head.has_value() || head->when >= spec_horizon_) break;
    // The heap minimum sorts at or after every lane entry (absorb keeps
    // the lane the prefix of the shard's due order), so this insert is
    // an append in the common case; upper_bound keeps the lane sorted
    // even on (when, seq) ties at the boundary.
    const CollUrls::Entry e = *shards_[s].PopEntry();
    lane.insert(std::upper_bound(lane.begin(), lane.end(), e, Earlier),
                e);
    head_dirty_[s] = 1;
  }
}

std::size_t ShardedFrontier::RepairAndWinner() {
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (!head_dirty_[s]) continue;
    head_dirty_[s] = 0;
    auto head = shards_[s].PeekEntry();
    head_live_[s] = head.has_value() ? 1 : 0;
    if (head.has_value()) head_[s] = *head;
    ReplayPath(
        winner_, leaves_, s,
        [this](std::size_t i) { return head_live_[i] != 0; },
        [this](std::size_t i) -> const CollUrls::Entry& {
          return head_[i];
        });
  }
  uint32_t w = winner_[1];
  return w == kNoShard ? shards_.size() : static_cast<std::size_t>(w);
}

std::optional<ScheduledUrl> ShardedFrontier::Pop() {
  DrainSpeculation();
  const std::size_t w = RepairAndWinner();
  if (w == shards_.size()) return std::nullopt;
  auto popped = shards_[w].PopEntry();
  head_dirty_[w] = 1;
  return ScheduledUrl{popped->url, popped->when};
}

std::optional<ScheduledUrl> ShardedFrontier::Peek() {
  DrainSpeculation();
  const std::size_t w = RepairAndWinner();
  if (w == shards_.size()) return std::nullopt;
  return ScheduledUrl{head_[w].url, head_[w].when};
}

std::size_t ShardedFrontier::size() const {
  std::size_t total = 0;
  for (const CollUrls& shard : shards_) total += shard.size();
  if (speculating_) {
    // Speculatively extracted entries are still logically queued.
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      if (spec_valid_[s]) total += spec_lane_[s].size();
    }
  }
  return total;
}

void ShardedFrontier::BeginSpeculation(double start, double horizon,
                                       double step) {
  DrainSpeculation();
  if (!(step > 0.0) || start >= horizon) return;
  speculating_ = true;
  spec_start_ = start;
  spec_horizon_ = horizon;
  spec_step_ = step;
  // Same slot-capacity bound as PlanSlots stage 1.
  const double cap = (horizon - start) / step + 2.0;
  spec_max_slots_ = cap < 1e18 ? static_cast<std::size_t>(cap)
                               : std::numeric_limits<std::size_t>::max();
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    spec_lane_[s].clear();
    spec_valid_[s] = 0;
    spec_flushed_[s] = 0;
  }
}

void ShardedFrontier::SpeculateShard(std::size_t s) {
  if (!speculating_) return;
  std::vector<CollUrls::Entry>& out = spec_lane_[s];
  while (out.size() < spec_max_slots_) {
    auto head = shards_[s].PeekEntry();
    if (!head.has_value() || head->when >= spec_horizon_) break;
    out.push_back(*shards_[s].PopEntry());
  }
  if (!out.empty()) head_dirty_[s] = 1;
  // Mark the lane authoritative even when empty: an untouched shard
  // with nothing due needs no re-extraction at reconcile.
  spec_valid_[s] = 1;
}

void ShardedFrontier::DrainSpeculation() {
  if (!speculating_) return;
  for (std::size_t s = 0; s < shards_.size(); ++s) FlushSpecLane(s);
  speculating_ = false;
}

ShardedFrontier::SlotPlan ShardedFrontier::PlanSlots(double start,
                                                     double horizon,
                                                     double step,
                                                     ThreadPool* threads) {
  SlotPlan plan;
  plan.end_time = start;

  // A speculation armed for exactly this (start, horizon, step) hands
  // its intact lanes straight to the merge; anything else is stale and
  // must flush back before planning from scratch.
  const bool reuse_spec = speculating_ && spec_start_ == start &&
                          spec_horizon_ == horizon && spec_step_ == step;
  if (speculating_ && !reuse_spec) DrainSpeculation();

  if (!(step > 0.0) || start >= horizon) {
    DrainSpeculation();
    return plan;
  }

  // Each consumed candidate advances the slot clock by `step`, so a
  // batch can never hold more than this many fetches — the per-shard
  // extraction bound.
  const double cap = (horizon - start) / step + 2.0;
  const std::size_t max_slots =
      cap < 1e18 ? static_cast<std::size_t>(cap)
                 : std::numeric_limits<std::size_t>::max();

  // Stage 1: per-shard candidate extraction, shard-parallel. Each task
  // touches only its own heap, its own output vector, and its own head
  // dirty byte; the pops come out sorted by (when, seq) because each
  // shard heap is one CollUrls. Under a matching speculation, a shard
  // whose lane survived the apply barrier intact reuses it verbatim —
  // the heap is already in the post-extraction state and the lane is
  // exactly what this loop would pop — while flushed lanes (the apply
  // barrier touched the shard) re-extract here.
  const std::size_t num_shards = shards_.size();
  std::vector<std::vector<CollUrls::Entry>> extracted(num_shards);
  auto extract = [this, horizon, max_slots, &extracted](std::size_t s) {
    std::vector<CollUrls::Entry>& out = extracted[s];
    while (out.size() < max_slots) {
      auto head = shards_[s].PeekEntry();
      if (!head.has_value() || head->when >= horizon) break;
      out.push_back(*shards_[s].PopEntry());
    }
    if (!out.empty()) head_dirty_[s] = 1;
  };
  std::vector<std::size_t> busy;
  for (std::size_t s = 0; s < num_shards; ++s) {
    if (reuse_spec && spec_valid_[s]) {
      extracted[s] = std::move(spec_lane_[s]);
      spec_lane_[s].clear();
      spec_valid_[s] = 0;
      ++plan.spec_lanes_reused;
      continue;
    }
    if (!shards_[s].empty()) busy.push_back(s);
  }
  if (threads != nullptr) {
    threads->RunForIndices(busy, extract);
  } else {
    for (std::size_t s : busy) extract(s);
  }
  if (reuse_spec) {
    plan.speculative = true;
    for (std::size_t s = 0; s < num_shards; ++s) {
      if (spec_flushed_[s]) ++plan.spec_lanes_invalidated;
      spec_flushed_[s] = 0;
    }
    speculating_ = false;
  }

  // Stage 2: deterministic tournament merge driving the slot clock —
  // the serial CollUrls plan loop, with the global (when, seq) order
  // reassembled from the shard heads in O(log N) per slot.
  double t = start;
  MergeTree merge(extracted);
  while (t < horizon) {
    const uint32_t best = merge.winner();
    if (best == MergeTree::kNone) {
      t = horizon;  // nothing scheduled before the horizon: idle to it
      break;
    }
    const CollUrls::Entry& head = merge.head(best);
    if (head.when > t) {
      t = head.when;  // idle to the next due URL (spare capacity)
      continue;
    }
    plan.slots.push_back(ScheduledUrl{head.url, t});
    plan.owner.push_back(best);
    merge.advance(best);
    t += step;  // constant crawl speed: one fetch per slot
  }
  plan.end_time = t;

  // Stage 3: restore extracted-but-unplanned candidates with their
  // original keys, so the frontier state equals "only the planned URLs
  // were popped".
  for (std::size_t s = 0; s < num_shards; ++s) {
    for (std::size_t i = merge.cursor(s); i < extracted[s].size(); ++i) {
      const CollUrls::Entry& e = extracted[s][i];
      shards_[s].ScheduleAt(e.url, e.when, e.seq);
      head_dirty_[s] = 1;
    }
  }
  return plan;
}

}  // namespace webevo::crawler
