#include "crawler/sharded_frontier.h"

#include <algorithm>
#include <functional>
#include <limits>
#include <utility>

namespace webevo::crawler {
namespace {

// The one definition of the global pop order — earliest `when`, ties
// broken by the global sequence number (the inverse of CollUrls::Later)
// — shared by Pop, Peek and the PlanSlots merge so the three can never
// drift apart and break the bit-identical contract.
bool Earlier(const CollUrls::Entry& a, const CollUrls::Entry& b) {
  if (a.when != b.when) return a.when < b.when;
  return a.seq < b.seq;
}

}  // namespace

ShardedFrontier::ShardedFrontier(int num_shards)
    : shards_(static_cast<std::size_t>(std::max(1, num_shards))) {}

void ShardedFrontier::Schedule(const simweb::Url& url, double when) {
  shards_[ShardOf(url.site)].ScheduleAt(url, when, next_seq_++);
}

void ShardedFrontier::ScheduleFront(const simweb::Url& url) {
  // Identical arithmetic to CollUrls::ScheduleFront, with the offset
  // global to the frontier so front-inserts stay FIFO across shards.
  front_when_ += 1e-6;
  shards_[ShardOf(url.site)].ScheduleAt(url, CollUrls::kFrontBase + front_when_,
                                        next_seq_++);
}

Status ShardedFrontier::Remove(const simweb::Url& url) {
  return shards_[ShardOf(url.site)].Remove(url);
}

std::optional<ScheduledUrl> ShardedFrontier::Pop() {
  CollUrls* best = nullptr;
  CollUrls::Entry best_head;
  for (CollUrls& shard : shards_) {
    auto head = shard.PeekEntry();
    if (!head.has_value()) continue;
    if (best == nullptr || Earlier(*head, best_head)) {
      best = &shard;
      best_head = *head;
    }
  }
  if (best == nullptr) return std::nullopt;
  auto popped = best->PopEntry();
  return ScheduledUrl{popped->url, popped->when};
}

std::optional<ScheduledUrl> ShardedFrontier::Peek() {
  bool found = false;
  CollUrls::Entry best_head;
  for (CollUrls& shard : shards_) {
    auto head = shard.PeekEntry();
    if (!head.has_value()) continue;
    if (!found || Earlier(*head, best_head)) {
      best_head = *head;
      found = true;
    }
  }
  if (!found) return std::nullopt;
  return ScheduledUrl{best_head.url, best_head.when};
}

std::size_t ShardedFrontier::size() const {
  std::size_t total = 0;
  for (const CollUrls& shard : shards_) total += shard.size();
  return total;
}

ShardedFrontier::SlotPlan ShardedFrontier::PlanSlots(double start,
                                                     double horizon,
                                                     double step,
                                                     ThreadPool* threads) {
  SlotPlan plan;
  plan.end_time = start;
  if (!(step > 0.0) || start >= horizon) return plan;

  // Each consumed candidate advances the slot clock by `step`, so a
  // batch can never hold more than this many fetches — the per-shard
  // extraction bound.
  const double cap = (horizon - start) / step + 2.0;
  const std::size_t max_slots =
      cap < 1e18 ? static_cast<std::size_t>(cap)
                 : std::numeric_limits<std::size_t>::max();

  // Stage 1: per-shard candidate extraction, shard-parallel. Each task
  // touches only its own heap and its own output vector; the pops come
  // out sorted by (when, seq) because each shard heap is one CollUrls.
  const std::size_t num_shards = shards_.size();
  std::vector<std::vector<CollUrls::Entry>> extracted(num_shards);
  auto extract = [this, horizon, max_slots, &extracted](std::size_t s) {
    std::vector<CollUrls::Entry>& out = extracted[s];
    while (out.size() < max_slots) {
      auto head = shards_[s].PeekEntry();
      if (!head.has_value() || head->when >= horizon) break;
      out.push_back(*shards_[s].PopEntry());
    }
  };
  std::vector<std::size_t> busy;
  for (std::size_t s = 0; s < num_shards; ++s) {
    if (!shards_[s].empty()) busy.push_back(s);
  }
  if (threads != nullptr && busy.size() > 1) {
    std::vector<std::function<void()>> tasks;
    tasks.reserve(busy.size());
    for (std::size_t s : busy) {
      tasks.push_back([&extract, s] { extract(s); });
    }
    threads->RunAndWait(std::move(tasks));
  } else {
    for (std::size_t s : busy) extract(s);
  }

  // Stage 2: deterministic k-way merge driving the slot clock — the
  // serial CollUrls plan loop, with the global (when, seq) order
  // reassembled from the shard heads.
  double t = start;
  std::vector<std::size_t> next(num_shards, 0);
  while (t < horizon) {
    std::size_t best = num_shards;
    for (std::size_t s = 0; s < num_shards; ++s) {
      if (next[s] >= extracted[s].size()) continue;
      if (best == num_shards ||
          Earlier(extracted[s][next[s]], extracted[best][next[best]])) {
        best = s;
      }
    }
    if (best == num_shards) {
      t = horizon;  // nothing scheduled before the horizon: idle to it
      break;
    }
    const CollUrls::Entry& head = extracted[best][next[best]];
    if (head.when > t) {
      t = head.when;  // idle to the next due URL (spare capacity)
      continue;
    }
    plan.slots.push_back(ScheduledUrl{head.url, t});
    ++next[best];
    t += step;  // constant crawl speed: one fetch per slot
  }
  plan.end_time = t;

  // Stage 3: restore extracted-but-unplanned candidates with their
  // original keys, so the frontier state equals "only the planned URLs
  // were popped".
  for (std::size_t s = 0; s < num_shards; ++s) {
    for (std::size_t i = next[s]; i < extracted[s].size(); ++i) {
      const CollUrls::Entry& e = extracted[s][i];
      shards_[s].ScheduleAt(e.url, e.when, e.seq);
    }
  }
  return plan;
}

}  // namespace webevo::crawler
