#include "crawler/crawl_module_pool.h"

#include <algorithm>

namespace webevo::crawler {

CrawlModulePool::CrawlModulePool(simweb::SimulatedWeb* web,
                                 const CrawlModuleConfig& config,
                                 int parallelism) {
  parallelism = std::max(1, parallelism);
  modules_.reserve(static_cast<std::size_t>(parallelism));
  for (int i = 0; i < parallelism; ++i) {
    modules_.push_back(std::make_unique<CrawlModule>(web, config));
  }
}

StatusOr<simweb::FetchResult> CrawlModulePool::Crawl(
    const simweb::Url& url, double t) {
  return modules_[ShardOf(url.site)]->Crawl(url, t);
}

double CrawlModulePool::NextAllowedTime(uint32_t site) const {
  return modules_[ShardOf(site)]->NextAllowedTime(site);
}

std::vector<std::pair<uint32_t, double>>
CrawlModulePool::ExportPoliteness() const {
  std::vector<std::pair<uint32_t, double>> records;
  for (const auto& m : modules_) m->ExportPoliteness(&records);
  std::sort(records.begin(), records.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return records;
}

void CrawlModulePool::RestorePoliteness(
    const std::vector<std::pair<uint32_t, double>>& records) {
  for (const auto& m : modules_) m->ClearPoliteness();
  for (const auto& [site, last_access] : records) {
    modules_[ShardOf(site)]->RestorePoliteness(site, last_access);
  }
}

uint64_t CrawlModulePool::fetch_count() const {
  uint64_t total = 0;
  for (const auto& m : modules_) total += m->fetch_count();
  return total;
}

uint64_t CrawlModulePool::failure_count() const {
  uint64_t total = 0;
  for (const auto& m : modules_) total += m->failure_count();
  return total;
}

uint64_t CrawlModulePool::politeness_rejections() const {
  uint64_t total = 0;
  for (const auto& m : modules_) total += m->politeness_rejections();
  return total;
}

double CrawlModulePool::CombinedPeakDailyRate() const {
  double total = 0.0;
  for (const auto& m : modules_) total += m->PeakDailyRate();
  return total;
}

}  // namespace webevo::crawler
