#include "crawler/crawl_module_pool.h"

#include <algorithm>

namespace webevo::crawler {

CrawlModulePool::CrawlModulePool(simweb::SimulatedWeb* web,
                                 const CrawlModuleConfig& config,
                                 int parallelism) {
  parallelism = std::max(1, parallelism);
  modules_.reserve(static_cast<std::size_t>(parallelism));
  for (int i = 0; i < parallelism; ++i) {
    modules_.push_back(std::make_unique<CrawlModule>(web, config));
  }
}

StatusOr<simweb::FetchResult> CrawlModulePool::Crawl(
    const simweb::Url& url, double t) {
  return modules_[ShardOf(url.site)]->Crawl(url, t);
}

double CrawlModulePool::NextAllowedTime(uint32_t site) const {
  return modules_[ShardOf(site)]->NextAllowedTime(site);
}

std::vector<std::pair<uint32_t, double>>
CrawlModulePool::ExportPoliteness() const {
  std::vector<std::pair<uint32_t, double>> records;
  for (const auto& m : modules_) m->ExportPoliteness(&records);
  std::sort(records.begin(), records.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return records;
}

void CrawlModulePool::RestorePoliteness(
    const std::vector<std::pair<uint32_t, double>>& records) {
  for (const auto& m : modules_) m->ClearPoliteness();
  for (const auto& [site, last_access] : records) {
    modules_[ShardOf(site)]->RestorePoliteness(site, last_access);
  }
}

uint64_t CrawlModulePool::fetch_count() const {
  uint64_t total = baseline_.fetch_count;
  for (const auto& m : modules_) total += m->fetch_count();
  return total;
}

uint64_t CrawlModulePool::failure_count() const {
  uint64_t total = baseline_.failure_count;
  for (const auto& m : modules_) total += m->failure_count();
  return total;
}

uint64_t CrawlModulePool::politeness_rejections() const {
  uint64_t total = baseline_.politeness_rejections;
  for (const auto& m : modules_) total += m->politeness_rejections();
  return total;
}

double CrawlModulePool::CombinedPeakDailyRate() const {
  double total = baseline_.PeakDailyRate();
  for (const auto& m : modules_) total += m->PeakDailyRate();
  return total;
}

double CrawlModulePool::Traffic::PeakDailyRate() const {
  uint64_t peak = 0;
  for (uint64_t day : fetches_per_day) peak = std::max(peak, day);
  return static_cast<double>(peak);
}

double CrawlModulePool::Traffic::AverageDailyRate() const {
  if (!any_fetch) return 0.0;
  double span = std::max(1.0, last_fetch_time - first_fetch_time);
  return static_cast<double>(fetch_count) / span;
}

CrawlModulePool::Traffic CrawlModulePool::AggregateTraffic() const {
  Traffic total = baseline_;
  for (const auto& m : modules_) {
    total.fetch_count += m->fetch_count();
    total.failure_count += m->failure_count();
    total.politeness_rejections += m->politeness_rejections();
    const std::vector<uint64_t>& days = m->fetches_per_day();
    if (days.size() > total.fetches_per_day.size()) {
      total.fetches_per_day.resize(days.size(), 0);
    }
    for (std::size_t d = 0; d < days.size(); ++d) {
      total.fetches_per_day[d] += days[d];
    }
    if (m->any_fetch()) {
      if (!total.any_fetch) {
        total.first_fetch_time = m->first_fetch_time();
        total.last_fetch_time = m->last_fetch_time();
        total.any_fetch = true;
      } else {
        total.first_fetch_time =
            std::min(total.first_fetch_time, m->first_fetch_time());
        total.last_fetch_time =
            std::max(total.last_fetch_time, m->last_fetch_time());
      }
    }
  }
  return total;
}

void CrawlModulePool::RestoreTraffic(const Traffic& traffic) {
  for (const auto& m : modules_) m->ResetTraffic();
  baseline_ = traffic;
}

}  // namespace webevo::crawler
