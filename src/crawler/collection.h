#ifndef WEBEVO_CRAWLER_COLLECTION_H_
#define WEBEVO_CRAWLER_COLLECTION_H_

#include <cstddef>
#include <functional>
#include <unordered_map>
#include <vector>

#include "simweb/page.h"
#include "simweb/url.h"
#include "util/hash.h"
#include "util/status.h"

namespace webevo::crawler {

/// One stored page copy in the local collection, carrying exactly what
/// the paper's architecture needs: the checksum the UpdateModule
/// compares across crawls, the link structure the RankingModule scans,
/// and the importance score it maintains.
struct CollectionEntry {
  simweb::Url url;
  /// Ground-truth page identity from the fetch; used only by oracle
  /// evaluation and tests, never by crawl policy.
  simweb::PageId page = simweb::kInvalidPage;
  /// Content version at crawl time (oracle evaluation only).
  uint64_t version = 0;
  Checksum128 checksum;
  double crawled_at = 0.0;
  double importance = 0.0;
  /// Out-links extracted at crawl time.
  std::vector<simweb::Url> links;
};

/// The one definition of "a is a better eviction victim than b":
/// lower importance, ties broken by smaller URL identity. Shared by
/// Collection and ShardedCollection so the victim is the same pure
/// function of the stored entries at every shard count.
bool BetterEvictionVictim(const CollectionEntry& a,
                          const CollectionEntry& b);

/// A bounded page store with in-place updates — the `Collection` box of
/// Figure 12. The fixed capacity models the paper's fixed-size local
/// collection (Section 5.2, Algorithm 5.1): inserting a new page into a
/// full collection fails, forcing the caller to make a refinement
/// decision (discard something) first.
class Collection {
 public:
  explicit Collection(std::size_t capacity) : capacity_(capacity) {}

  /// Inserts a new entry or updates the existing one in place.
  /// Returns ResourceExhausted if the entry is new and the collection
  /// is at capacity.
  Status Upsert(CollectionEntry entry);

  /// Upsert without the capacity bound — the sharded lease-apply's
  /// overdraft primitive. A shard inserting against its capacity lease
  /// may temporarily overdraw this store (by at most its batch slot
  /// count); the caller settles the global bound afterwards by
  /// evicting the canonical overdraft victims.
  void UpsertUnchecked(CollectionEntry entry);

  /// Removes an entry; NotFound if absent.
  Status Remove(const simweb::Url& url);

  /// Looks up an entry; nullptr if absent. The pointer is invalidated
  /// by Upsert/Remove/Clear.
  const CollectionEntry* Find(const simweb::Url& url) const;
  CollectionEntry* FindMutable(const simweb::Url& url);

  bool Contains(const simweb::Url& url) const {
    return entries_.count(url) > 0;
  }

  std::size_t size() const { return entries_.size(); }
  std::size_t capacity() const { return capacity_; }
  bool full() const { return entries_.size() >= capacity_; }

  /// Applies `fn` to every entry (unspecified order).
  void ForEach(const std::function<void(const CollectionEntry&)>& fn) const;

  /// Entry with the lowest importance, ties broken by smallest URL
  /// identity (nullptr if empty) — the default victim of the refinement
  /// decision, deterministic regardless of hash-map layout.
  const CollectionEntry* LowestImportance() const;

  /// Appends this store's `k` best eviction victims to `out` in
  /// BetterEvictionVictim order (fewer if the store is smaller) — one
  /// shard's nomination list for the sharded collection's canonical
  /// cross-shard eviction settle. Deterministic regardless of hash-map
  /// layout (the victim order is total).
  void LowestImportanceK(std::size_t k,
                         std::vector<const CollectionEntry*>* out) const;

  void Clear() { entries_.clear(); }

  /// Moves all entries out of `other` into *this (used by shadow swap);
  /// requires *this to have enough capacity for other's size.
  Status AbsorbAll(Collection& other);

 private:
  std::size_t capacity_;
  std::unordered_map<simweb::Url, CollectionEntry, simweb::UrlHash> entries_;
};

/// A shadowed page store (Section 4, choice 2): the crawler writes into
/// a private shadow space while users read a stable current collection;
/// `Swap()` atomically publishes the shadow and empties it for the next
/// crawl cycle — the instantaneous replacement the paper assumes.
class ShadowedCollection {
 public:
  explicit ShadowedCollection(std::size_t capacity)
      : current_(capacity), shadow_(capacity) {}

  Collection& shadow() { return shadow_; }
  const Collection& shadow() const { return shadow_; }
  const Collection& current() const { return current_; }
  Collection& current_mutable() { return current_; }

  /// Publishes the shadow as the current collection and clears the
  /// shadow space.
  void Swap();

  /// Number of swaps performed (crawl cycles completed).
  int64_t swap_count() const { return swap_count_; }

  /// Checkpoint restore of the swap counter (accounting only).
  void RestoreSwapCount(int64_t n) { swap_count_ = n; }

 private:
  Collection current_;
  Collection shadow_;
  int64_t swap_count_ = 0;
};

}  // namespace webevo::crawler

#endif  // WEBEVO_CRAWLER_COLLECTION_H_
