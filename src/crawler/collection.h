#ifndef WEBEVO_CRAWLER_COLLECTION_H_
#define WEBEVO_CRAWLER_COLLECTION_H_

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "simweb/page.h"
#include "simweb/url.h"
#include "storage/record_store.h"
#include "util/hash.h"
#include "util/status.h"

namespace webevo::crawler {

/// One stored page copy in the local collection, carrying exactly what
/// the paper's architecture needs: the checksum the UpdateModule
/// compares across crawls, the link structure the RankingModule scans,
/// and the importance score it maintains.
struct CollectionEntry {
  simweb::Url url;
  /// Ground-truth page identity from the fetch; used only by oracle
  /// evaluation and tests, never by crawl policy.
  simweb::PageId page = simweb::kInvalidPage;
  /// Content version at crawl time (oracle evaluation only).
  uint64_t version = 0;
  Checksum128 checksum;
  double crawled_at = 0.0;
  double importance = 0.0;
  /// Out-links extracted at crawl time.
  std::vector<simweb::Url> links;
};

/// The one definition of "a is a better eviction victim than b":
/// lower importance, ties broken by smaller URL identity. Shared by
/// Collection and ShardedCollection so the victim is the same pure
/// function of the stored entries at every shard count.
bool BetterEvictionVictim(const CollectionEntry& a,
                          const CollectionEntry& b);

/// A bounded page store with in-place updates — the `Collection` box of
/// Figure 12. The fixed capacity models the paper's fixed-size local
/// collection (Section 5.2, Algorithm 5.1): inserting a new page into a
/// full collection fails, forcing the caller to make a refinement
/// decision (discard something) first.
///
/// Since the storage-layer refactor the entries live behind a
/// storage::RecordStore — the in-memory map backend by default
/// (behaviour-preserving) or the paged disk backend when constructed
/// with StoreOptions{kPaged}. All pointer-returning lookups keep the
/// historical contract: results stay valid until the next mutating
/// call (Upsert/Remove/Clear/Flush).
class Collection {
 public:
  explicit Collection(std::size_t capacity)
      : Collection(capacity, storage::StoreOptions{}, "collection") {}

  /// Backend-selecting constructor; `name` seeds the paged backend's
  /// scratch-file name.
  Collection(std::size_t capacity, const storage::StoreOptions& options,
             const std::string& name);

  /// Inserts a new entry or updates the existing one in place.
  /// Returns ResourceExhausted if the entry is new and the collection
  /// is at capacity.
  Status Upsert(CollectionEntry entry);

  /// Upsert without the capacity bound — the sharded lease-apply's
  /// overdraft primitive. A shard inserting against its capacity lease
  /// may temporarily overdraw this store (by at most its batch slot
  /// count); the caller settles the global bound afterwards by
  /// evicting the canonical overdraft victims.
  void UpsertUnchecked(CollectionEntry entry);

  /// Removes an entry; NotFound if absent.
  Status Remove(const simweb::Url& url);

  /// Looks up an entry; nullptr if absent. The pointer is invalidated
  /// by the next mutating call.
  const CollectionEntry* Find(const simweb::Url& url) const;
  CollectionEntry* FindMutable(const simweb::Url& url);

  bool Contains(const simweb::Url& url) const {
    return store_->Contains(url);
  }

  std::size_t size() const { return store_->size(); }
  std::size_t capacity() const { return capacity_; }
  bool full() const { return size() >= capacity_; }

  /// Applies `fn` to every entry (unspecified order).
  void ForEach(const std::function<void(const CollectionEntry&)>& fn) const;

  /// Applies `fn` to every entry in ascending URL identity order.
  void ForEachCanonical(
      const std::function<void(const CollectionEntry&)>& fn) const;

  /// Entry with the lowest importance, ties broken by smallest URL
  /// identity (nullptr if empty) — the default victim of the refinement
  /// decision, deterministic regardless of backend layout.
  const CollectionEntry* LowestImportance() const;

  /// Appends this store's `k` best eviction victims to `out` in
  /// BetterEvictionVictim order (fewer if the store is smaller) — one
  /// shard's nomination list for the sharded collection's canonical
  /// cross-shard eviction settle. Deterministic regardless of backend
  /// layout (the victim order is total).
  void LowestImportanceK(std::size_t k,
                         std::vector<const CollectionEntry*>* out) const;

  void Clear() { store_->Clear(); }

  /// Barrier hook: compacts mutated records into pages and trims the
  /// paged backend's decoded-record overlay (no-op on the memory
  /// backend). Invalidates outstanding entry pointers.
  void Flush() { store_->Flush(); }

  /// Moves all entries out of `other` into *this (used by shadow swap);
  /// requires *this to have enough capacity for other's size.
  Status AbsorbAll(Collection& other);

  /// Replaces this collection's contents with a copy of `other`'s,
  /// keeping *this's backend — the checkpoint-load commit step, so a
  /// paged collection stays paged across a resume.
  void ReplaceEntriesFrom(const Collection& other);

  /// Dirty-key tracking for incremental checkpoints (delegates to the
  /// store; see storage::RecordStore).
  void EnableDirtyTracking() { store_->EnableDirtyTracking(); }
  const storage::RecordStore<CollectionEntry>::DirtySet& dirty() const {
    return store_->dirty();
  }
  bool cleared_while_tracking() const {
    return store_->cleared_while_tracking();
  }
  void ClearDirty() { store_->ClearDirty(); }

  storage::StoreStats store_stats() const { return store_->stats(); }

 private:
  std::size_t capacity_;
  std::unique_ptr<storage::RecordStore<CollectionEntry>> store_;
};

/// A shadowed page store (Section 4, choice 2): the crawler writes into
/// a private shadow space while users read a stable current collection;
/// `Swap()` atomically publishes the shadow and empties it for the next
/// crawl cycle — the instantaneous replacement the paper assumes.
class ShadowedCollection {
 public:
  explicit ShadowedCollection(std::size_t capacity)
      : current_(capacity), shadow_(capacity) {}

  ShadowedCollection(std::size_t capacity,
                     const storage::StoreOptions& options)
      : current_(capacity, options, "shadowed-current"),
        shadow_(capacity, options, "shadowed-shadow") {}

  Collection& shadow() { return shadow_; }
  const Collection& shadow() const { return shadow_; }
  const Collection& current() const { return current_; }
  Collection& current_mutable() { return current_; }

  /// Publishes the shadow as the current collection and clears the
  /// shadow space.
  void Swap();

  /// Number of swaps performed (crawl cycles completed).
  int64_t swap_count() const { return swap_count_; }

  /// Checkpoint restore of the swap counter (accounting only).
  void RestoreSwapCount(int64_t n) { swap_count_ = n; }

 private:
  Collection current_;
  Collection shadow_;
  int64_t swap_count_ = 0;
};

}  // namespace webevo::crawler

#endif  // WEBEVO_CRAWLER_COLLECTION_H_
