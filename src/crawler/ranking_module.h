#ifndef WEBEVO_CRAWLER_RANKING_MODULE_H_
#define WEBEVO_CRAWLER_RANKING_MODULE_H_

#include <cstdint>
#include <vector>

#include "crawler/all_urls.h"
#include "crawler/collection.h"
#include "crawler/sharded_collection.h"
#include "simweb/url.h"
#include "util/status.h"

namespace webevo::crawler {

/// Importance metric used for the refinement decision (Section 5.2
/// names PageRank [CGMP98, PB98] and Hub & Authority [Kle98]).
enum class ImportanceMetric {
  kPageRank,
  kHitsAuthority,
  kInLinks,  ///< raw in-link count; cheap baseline
};

const char* ImportanceMetricName(ImportanceMetric metric);

struct RankingModuleConfig {
  ImportanceMetric metric = ImportanceMetric::kPageRank;
  /// Damping for PageRank; the paper used 0.9.
  double damping = 0.9;
  /// Cap on replacements per refinement pass, bounding churn.
  std::size_t max_replacements = 64;
  /// A candidate must beat its victim's importance by this factor —
  /// hysteresis against thrashing on near-equal scores.
  double replacement_hysteresis = 1.25;
};

/// One refinement decision: discard a collection page, crawl a
/// replacement immediately (Algorithm 5.1 steps [7]-[10]).
struct Replacement {
  simweb::Url discard;
  simweb::Url crawl;
  double discard_score = 0.0;
  double crawl_score = 0.0;
};

/// Outcome of one refinement pass.
struct RefinementResult {
  std::vector<Replacement> replacements;
  /// Candidates to crawl into *free* space (only produced while the
  /// collection is below capacity), best-scoring first.
  std::vector<simweb::Url> admissions;
  std::size_t graph_nodes = 0;
  std::size_t graph_edges = 0;
  int iterations = 0;  ///< PageRank/HITS iterations used
};

/// The `RankingModule` of Figure 12: owns the refinement decision.
///
/// It rebuilds the link graph over the collection's stored out-links —
/// nodes are collection pages plus every known, live, uncollected URL
/// (whose importance is estimable from collection in-links alone,
/// footnote 2) — scores all nodes with the configured metric, writes
/// the scores back into the collection entries, and pairs the
/// highest-scoring candidates with the lowest-scoring collection pages
/// to produce replacement decisions.
///
/// Deliberately expensive and infrequent: the paper separates this scan
/// from the UpdateModule's per-page fast path so the crawler can keep
/// fetching at full speed while importance is re-evaluated.
class RankingModule {
 public:
  explicit RankingModule(const RankingModuleConfig& config);

  /// Scores everything and returns replacement decisions. Updates the
  /// `importance` field of collection entries in place. The caller
  /// executes the replacements (discard + schedule crawl). Members and
  /// candidates are walked in canonical (site, slot, incarnation)
  /// order, so graph node numbering — and with it every score and tie
  /// resolution — is independent of hash-map layout and shard count.
  RefinementResult Refine(const AllUrls& all_urls, Collection& collection);
  RefinementResult Refine(const AllUrls& all_urls,
                          ShardedCollection& collection);

  const RankingModuleConfig& config() const { return config_; }
  int64_t refinement_count() const { return refinement_count_; }

  /// Checkpoint restore of the pass counter (accounting only; the
  /// module keeps no other state between passes).
  void RestoreRefinementCount(int64_t n) { refinement_count_ = n; }

 private:
  RankingModuleConfig config_;
  int64_t refinement_count_ = 0;
};

}  // namespace webevo::crawler

#endif  // WEBEVO_CRAWLER_RANKING_MODULE_H_
