#include "crawler/all_urls.h"

#include <algorithm>
#include <utility>

#include "crawler/store_codecs.h"
#include "storage/paged_record_store.h"

namespace webevo::crawler {

AllUrls::AllUrls(int num_shards, const storage::StoreOptions& options,
                 const std::string& name) {
  const std::size_t n = static_cast<std::size_t>(std::max(1, num_shards));
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (options.backend == storage::StoreOptions::Backend::kPaged) {
      shards_.push_back(
          std::make_unique<
              storage::PagedRecordStore<UrlInfo, UrlInfoCodec>>(
              options, name + "-shard" + std::to_string(i)));
    } else {
      shards_.push_back(
          std::make_unique<storage::MapRecordStore<UrlInfo>>());
    }
  }
}

bool AllUrls::Add(const simweb::Url& url, double time) {
  auto& shard = *shards_[ShardOf(url.site)];
  if (shard.Contains(url)) return false;
  UrlInfo info;
  info.first_seen = time;
  shard.Put(url, std::move(info));
  return true;
}

const AllUrls::UrlInfo& AllUrls::NoteInLink(const simweb::Url& url,
                                            double time) {
  auto& shard = *shards_[ShardOf(url.site)];
  UrlInfo* info = shard.FindMutable(url);
  if (info == nullptr) {
    UrlInfo fresh;
    fresh.first_seen = time;
    fresh.in_links = 1;
    return *shard.Put(url, std::move(fresh));
  }
  ++info->in_links;
  return *info;
}

Status AllUrls::MarkDead(const simweb::Url& url) {
  UrlInfo* info = shards_[ShardOf(url.site)]->FindMutable(url);
  if (info == nullptr) return Status::NotFound("unknown url");
  info->dead = true;
  return Status::Ok();
}

const AllUrls::UrlInfo* AllUrls::Find(const simweb::Url& url) const {
  return shards_[ShardOf(url.site)]->Find(url);
}

std::size_t AllUrls::size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard->size();
  return total;
}

const simweb::Url* AllUrls::FingerprintOwner(const Checksum128& fp) const {
  auto it = fingerprints_.find(fp);
  return it == fingerprints_.end() ? nullptr : &it->second;
}

bool AllUrls::ClaimFingerprint(const Checksum128& fp,
                               const simweb::Url& url) {
  return fingerprints_.emplace(fp, url).second;
}

void AllUrls::ReassignFingerprint(const Checksum128& fp,
                                  const simweb::Url& url) {
  fingerprints_[fp] = url;
}

std::vector<std::pair<Checksum128, simweb::Url>>
AllUrls::SortedFingerprints() const {
  std::vector<std::pair<Checksum128, simweb::Url>> out(
      fingerprints_.begin(), fingerprints_.end());
  std::sort(out.begin(), out.end(),
            [](const std::pair<Checksum128, simweb::Url>& a,
               const std::pair<Checksum128, simweb::Url>& b) {
              if (a.first.hi != b.first.hi) return a.first.hi < b.first.hi;
              return a.first.lo < b.first.lo;
            });
  return out;
}

void AllUrls::Restore(const simweb::Url& url, const UrlInfo& info) {
  shards_[ShardOf(url.site)]->Put(url, UrlInfo(info));
}

void AllUrls::ReplaceEntriesFrom(const AllUrls& other) {
  for (auto& shard : shards_) shard->Clear();
  other.ForEach([this](const simweb::Url& url, const UrlInfo& info) {
    shards_[ShardOf(url.site)]->Put(url, UrlInfo(info));
  });
  fingerprints_ = other.fingerprints_;
}

void AllUrls::Flush() {
  for (auto& shard : shards_) shard->Flush();
}

void AllUrls::EnableDirtyTracking() {
  for (auto& shard : shards_) shard->EnableDirtyTracking();
}

void AllUrls::AppendDirty(DirtySet* out) const {
  for (const auto& shard : shards_) {
    out->insert(shard->dirty().begin(), shard->dirty().end());
  }
}

void AllUrls::ClearDirty() {
  for (auto& shard : shards_) shard->ClearDirty();
}

}  // namespace webevo::crawler
