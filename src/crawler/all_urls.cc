#include "crawler/all_urls.h"

namespace webevo::crawler {

bool AllUrls::Add(const simweb::Url& url, double time) {
  auto [it, inserted] = info_.try_emplace(url);
  if (inserted) it->second.first_seen = time;
  return inserted;
}

void AllUrls::NoteInLink(const simweb::Url& url, double time) {
  auto [it, inserted] = info_.try_emplace(url);
  if (inserted) it->second.first_seen = time;
  ++it->second.in_links;
}

Status AllUrls::MarkDead(const simweb::Url& url) {
  auto it = info_.find(url);
  if (it == info_.end()) return Status::NotFound("unknown url");
  it->second.dead = true;
  return Status::Ok();
}

const AllUrls::UrlInfo* AllUrls::Find(const simweb::Url& url) const {
  auto it = info_.find(url);
  return it == info_.end() ? nullptr : &it->second;
}

}  // namespace webevo::crawler
