#include "crawler/all_urls.h"

#include <algorithm>

namespace webevo::crawler {

AllUrls::AllUrls(int num_shards)
    : shards_(static_cast<std::size_t>(std::max(1, num_shards))) {}

bool AllUrls::Add(const simweb::Url& url, double time) {
  auto [it, inserted] = shards_[ShardOf(url.site)].try_emplace(url);
  if (inserted) it->second.first_seen = time;
  return inserted;
}

const AllUrls::UrlInfo& AllUrls::NoteInLink(const simweb::Url& url,
                                            double time) {
  auto [it, inserted] = shards_[ShardOf(url.site)].try_emplace(url);
  if (inserted) it->second.first_seen = time;
  ++it->second.in_links;
  return it->second;
}

Status AllUrls::MarkDead(const simweb::Url& url) {
  auto& shard = shards_[ShardOf(url.site)];
  auto it = shard.find(url);
  if (it == shard.end()) return Status::NotFound("unknown url");
  it->second.dead = true;
  return Status::Ok();
}

const AllUrls::UrlInfo* AllUrls::Find(const simweb::Url& url) const {
  const auto& shard = shards_[ShardOf(url.site)];
  auto it = shard.find(url);
  return it == shard.end() ? nullptr : &it->second;
}

std::size_t AllUrls::size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard.size();
  return total;
}

}  // namespace webevo::crawler
