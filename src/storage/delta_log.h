#ifndef WEBEVO_STORAGE_DELTA_LOG_H_
#define WEBEVO_STORAGE_DELTA_LOG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace webevo::storage {

/// The write-ahead delta log behind incremental checkpoints: an
/// append-only file of *sealed segments*, one per checkpointed batch.
///
/// Segment wire format (all framing is line-oriented, like the
/// checkpoint container):
///
///     webevo-delta 1 <kind> <batch> <nsections> <payload_bytes>
///     S <name> <len> <fnv64>          (x nsections)
///     H <fnv64-of-all-preceding-lines>
///     <payload bytes: the sections' bytes, concatenated>
///     Z <fnv64-of-payload>
///
/// The trailing `Z` line is the *seal*: the writer builds the whole
/// segment in memory, appends it, and fsyncs before returning, so a
/// segment is either fully present and sealed or it is the file's torn
/// tail. The reader accepts the longest sealed prefix; bytes after it
/// that do not form a sealed segment are reported as a torn tail (the
/// crash-recovery case) and ignored. Corrupt *sealed-looking* data —
/// a checksum mismatch with the full segment present — is an error,
/// not a torn tail.
inline constexpr const char* kDeltaMagic = "webevo-delta";
inline constexpr int kDeltaFormatVersion = 1;
inline constexpr std::size_t kMaxDeltaSections = 32;

struct DeltaSection {
  std::string name;
  std::string bytes;
};

struct DeltaSegment {
  std::string kind;  ///< "incremental" | "periodic" (container kind)
  uint64_t batch = 0;
  std::vector<DeltaSection> sections;

  const DeltaSection* FindSection(const std::string& name) const;
};

struct DeltaLogContents {
  std::vector<DeltaSegment> segments;  ///< the sealed prefix, in order
  uint64_t torn_tail_bytes = 0;        ///< unsealed bytes past it
};

/// Serialises a segment to its wire format (exposed for the inspector
/// tool and tests).
std::string EncodeDeltaSegment(const DeltaSegment& segment);

/// Appends `segment`, sealed, to the log at `path` (creating it if
/// absent) and fsyncs — the durability point of the checkpoint
/// barrier.
///
/// Crash-injection hook: when the environment variable
/// `WEBEVO_CRASH_AT_DELTA_SEGMENT=<k>` is set, the k-th append in this
/// process (1-based) writes the header and half the payload, omits the
/// seal, flushes, and calls _exit(17) — simulating a crash between the
/// WAL append and the segment seal.
Status AppendDeltaSegment(const std::string& path,
                          const DeltaSegment& segment);

/// Reads the sealed prefix of the log. A missing file yields empty
/// contents (no segments, no torn tail).
StatusOr<DeltaLogContents> ReadDeltaLog(const std::string& path);

/// Empties the log (the rebase step after a new base image is
/// written).
Status TruncateDeltaLog(const std::string& path);

}  // namespace webevo::storage

#endif  // WEBEVO_STORAGE_DELTA_LOG_H_
