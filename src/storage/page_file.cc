#include "storage/page_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cassert>
#include <cstdio>
#include <cstring>

namespace webevo::storage {

namespace {

constexpr uint16_t kTombstone = 0xFFFF;
constexpr std::size_t kSlotDirEntry = 4;  // u16 off + u16 len
constexpr std::size_t kPageHeader = 2;    // u16 nslots

uint16_t ReadU16(const char* p) {
  return static_cast<uint16_t>(static_cast<unsigned char>(p[0]) |
                               (static_cast<unsigned char>(p[1]) << 8));
}

void WriteU16(char* p, uint16_t v) {
  p[0] = static_cast<char>(v & 0xFF);
  p[1] = static_cast<char>((v >> 8) & 0xFF);
}

}  // namespace

std::string PageFile::UniquePath(const std::string& dir,
                                 const std::string& name) {
  static std::atomic<uint64_t> counter{0};
  const uint64_t id = counter.fetch_add(1, std::memory_order_relaxed);
  const std::string base = dir.empty() ? "." : dir;
  return base + "/" + name + "." + std::to_string(::getpid()) + "." +
         std::to_string(id) + ".pages";
}

std::size_t PageFile::MaxRecordBytes(std::size_t page_bytes) {
  if (page_bytes <= kPageHeader + kSlotDirEntry) return 0;
  return page_bytes - kPageHeader - kSlotDirEntry;
}

PageFile::PageFile(std::string path, std::size_t page_bytes,
                   std::size_t cache_pages)
    : path_(std::move(path)),
      page_bytes_(page_bytes),
      cache_cap_(cache_pages == 0 ? 1 : cache_pages) {
  assert(page_bytes_ >= 64 && page_bytes_ <= 0xFFFF);
  fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  assert(fd_ >= 0 && "PageFile: cannot create backing file");
}

PageFile::~PageFile() {
  if (fd_ >= 0) ::close(fd_);
  std::remove(path_.c_str());
}

std::size_t PageFile::Gap(const PageMeta& meta) const {
  const std::size_t dir_end =
      kPageHeader + kSlotDirEntry * meta.slots.size();
  return meta.cell_floor > dir_end ? meta.cell_floor - dir_end : 0;
}

std::size_t PageFile::FreeBytes(const PageMeta& meta) const {
  // Bytes a new record of length L can use: the page's dead cell bytes
  // plus the gap, minus the directory entry a fresh slot needs (a
  // tombstoned slot is reused for free).
  const std::size_t dir_end =
      kPageHeader + kSlotDirEntry * meta.slots.size();
  const std::size_t cell_area = page_bytes_ - dir_end;
  const std::size_t used = meta.live_bytes;
  std::size_t free = cell_area > used ? cell_area - used : 0;
  const bool has_tombstone = meta.live_slots < meta.slots.size();
  if (!has_tombstone) {
    free = free > kSlotDirEntry ? free - kSlotDirEntry : 0;
  }
  return free;
}

void PageFile::WriteBack(uint64_t page, const std::vector<char>& buf) {
  const off_t off = static_cast<off_t>(page) *
                    static_cast<off_t>(page_bytes_);
  ssize_t n = ::pwrite(fd_, buf.data(), page_bytes_, off);
  (void)n;
  assert(n == static_cast<ssize_t>(page_bytes_));
}

void PageFile::TouchLru(uint64_t page) {
  auto it = cache_.find(page);
  lru_.erase(it->second.lru_it);
  lru_.push_front(page);
  it->second.lru_it = lru_.begin();
}

void PageFile::EvictIfNeeded(uint64_t except_page) {
  while (cache_.size() > cache_cap_) {
    // Evict the least-recently-used page other than the one in use.
    auto victim = lru_.end();
    for (auto it = std::prev(lru_.end());; --it) {
      if (*it != except_page) {
        victim = it;
        break;
      }
      if (it == lru_.begin()) break;
    }
    if (victim == lru_.end()) return;
    auto cit = cache_.find(*victim);
    if (cit->second.dirty) {
      WriteBack(*victim, cit->second.buf);
      ++page_evictions_;
    }
    cache_.erase(cit);
    lru_.erase(victim);
  }
}

std::vector<char>& PageFile::PageBuffer(uint64_t page) {
  auto it = cache_.find(page);
  if (it != cache_.end()) {
    TouchLru(page);
    return it->second.buf;
  }
  CacheEntry entry;
  entry.buf.assign(page_bytes_, 0);
  const off_t off = static_cast<off_t>(page) *
                    static_cast<off_t>(page_bytes_);
  ssize_t n = ::pread(fd_, entry.buf.data(), page_bytes_, off);
  (void)n;  // short read = page never written back yet; zeros are fine
  ++page_reads_;
  lru_.push_front(page);
  entry.lru_it = lru_.begin();
  auto [nit, ok] = cache_.emplace(page, std::move(entry));
  (void)ok;
  EvictIfNeeded(page);
  return nit->second.buf;
}

void PageFile::CompactPage(uint64_t page, PageMeta& meta,
                           std::vector<char>& buf) {
  (void)page;
  std::vector<char> fresh(page_bytes_, 0);
  uint16_t cell_end = static_cast<uint16_t>(page_bytes_);
  for (std::size_t i = 0; i < meta.slots.size(); ++i) {
    Slot& s = meta.slots[i];
    if (s.off == kTombstone) continue;
    cell_end = static_cast<uint16_t>(cell_end - s.len);
    std::memcpy(fresh.data() + cell_end, buf.data() + s.off, s.len);
    s.off = cell_end;
  }
  meta.cell_floor = cell_end;
  buf.swap(fresh);
  WriteU16(buf.data(), static_cast<uint16_t>(meta.slots.size()));
  for (std::size_t i = 0; i < meta.slots.size(); ++i) {
    WriteU16(buf.data() + kPageHeader + kSlotDirEntry * i,
             meta.slots[i].off);
    WriteU16(buf.data() + kPageHeader + kSlotDirEntry * i + 2,
             meta.slots[i].len);
  }
}

PageFile::Loc PageFile::Insert(const std::string& bytes) {
  assert(bytes.size() <= MaxRecordBytes(page_bytes_) &&
         "record exceeds page capacity");
  const std::size_t len = bytes.size();

  // First fit over page numbers.
  uint64_t page = pages_.size();
  for (uint64_t p = 0; p < pages_.size(); ++p) {
    if (FreeBytes(pages_[p]) >= len) {
      page = p;
      break;
    }
  }
  if (page == pages_.size()) {
    pages_.emplace_back();
    pages_.back().cell_floor = static_cast<uint16_t>(page_bytes_);
  }
  PageMeta& meta = pages_[page];
  std::vector<char>& buf = PageBuffer(page);

  // Reuse a tombstoned slot if one exists, else append a directory
  // entry.
  uint16_t slot = kTombstone;
  for (std::size_t i = 0; i < meta.slots.size(); ++i) {
    if (meta.slots[i].off == kTombstone) {
      slot = static_cast<uint16_t>(i);
      break;
    }
  }
  if (slot == kTombstone) {
    slot = static_cast<uint16_t>(meta.slots.size());
    meta.slots.emplace_back();
  }

  if (Gap(meta) < len) CompactPage(page, meta, buf);
  assert(Gap(meta) >= len && "free-space accounting out of sync");

  const uint16_t off = static_cast<uint16_t>(meta.cell_floor - len);
  std::memcpy(buf.data() + off, bytes.data(), len);
  meta.cell_floor = off;
  meta.slots[slot].off = off;
  meta.slots[slot].len = static_cast<uint16_t>(len);
  meta.live_bytes += static_cast<uint32_t>(len);
  ++meta.live_slots;

  WriteU16(buf.data(), static_cast<uint16_t>(meta.slots.size()));
  WriteU16(buf.data() + kPageHeader + kSlotDirEntry * slot, off);
  WriteU16(buf.data() + kPageHeader + kSlotDirEntry * slot + 2,
           static_cast<uint16_t>(len));
  cache_.find(page)->second.dirty = true;
  return Loc{page, slot};
}

std::string PageFile::Read(const Loc& loc) {
  assert(loc.page < pages_.size());
  const PageMeta& meta = pages_[loc.page];
  assert(loc.slot < meta.slots.size());
  const Slot& s = meta.slots[loc.slot];
  assert(s.off != kTombstone && "Read of erased record");
  std::vector<char>& buf = PageBuffer(loc.page);
  return std::string(buf.data() + s.off, s.len);
}

void PageFile::Erase(const Loc& loc) {
  assert(loc.page < pages_.size());
  PageMeta& meta = pages_[loc.page];
  assert(loc.slot < meta.slots.size());
  Slot& s = meta.slots[loc.slot];
  assert(s.off != kTombstone && "Erase of erased record");
  meta.live_bytes -= s.len;
  --meta.live_slots;
  // Keep cell_floor honest when the lowest cell dies; a full recompute
  // happens naturally at the next compaction.
  s.off = kTombstone;
  s.len = 0;
  std::vector<char>& buf = PageBuffer(loc.page);
  WriteU16(buf.data() + kPageHeader + kSlotDirEntry * loc.slot,
           kTombstone);
  WriteU16(buf.data() + kPageHeader + kSlotDirEntry * loc.slot + 2, 0);
  cache_.find(loc.page)->second.dirty = true;
}

void PageFile::Clear() {
  pages_.clear();
  cache_.clear();
  lru_.clear();
  if (fd_ >= 0) {
    int rc = ::ftruncate(fd_, 0);
    (void)rc;
  }
}

PageFile::Stats PageFile::stats() const {
  Stats s;
  s.pages = pages_.size();
  s.cached_pages = cache_.size();
  s.page_evictions = page_evictions_;
  s.page_reads = page_reads_;
  for (const PageMeta& m : pages_) {
    s.live_records += m.live_slots;
    s.live_bytes += m.live_bytes;
  }
  return s;
}

}  // namespace webevo::storage
