#ifndef WEBEVO_STORAGE_PAGED_RECORD_STORE_H_
#define WEBEVO_STORAGE_PAGED_RECORD_STORE_H_

#include <algorithm>
#include <map>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "storage/page_file.h"
#include "storage/record_store.h"

namespace webevo::storage {

/// The disk-backed RecordStore: encoded records live in a PageFile, an
/// in-memory canonical index maps every key to its page location, and
/// a decoded-record *overlay* (an unordered_map, so node-stable)
/// materialises records on access, giving callers the same
/// reference-stability contract as the memory backend.
///
/// Mutations (Put, FindMutable writes) land in the overlay and are
/// compacted into pages at Flush() — the barrier hook — in canonical
/// key order, so page contents are deterministic for a deterministic
/// mutation stream. Full-table walks (ForEach*) materialise every
/// record into the overlay for the duration of the walk; the overlay
/// is trimmed back to `overlay_entries` clean records at the next
/// Flush(). Oversized records (beyond a page's cell capacity) are kept
/// pinned in the overlay rather than paged.
///
/// `Codec` must provide:
///     static std::string Encode(const Record&);
///     static Record Decode(const std::string& bytes);
template <typename Record, typename Codec>
class PagedRecordStore final : public RecordStore<Record> {
 public:
  using typename RecordStore<Record>::ForEachFn;

  PagedRecordStore(const StoreOptions& options, const std::string& name)
      : file_(PageFile::UniquePath(options.dir, name),
              options.page_bytes, options.cache_pages),
        clean_cap_(options.overlay_entries) {}

  Record* Put(const simweb::Url& url, Record&& record) override {
    this->MarkDirty(url);
    IndexEntry& ie = index_[url];  // Placement::kUnplaced when new
    OverlayEntry& oe = overlay_[url];
    oe.record = std::move(record);
    oe.dirty = true;
    oe.last_use = ++use_clock_;
    (void)ie;
    return &oe.record;
  }

  bool Erase(const simweb::Url& url) override {
    auto it = index_.find(url);
    if (it == index_.end()) return false;
    if (it->second.placement == Placement::kPaged) {
      file_.Erase(it->second.loc);
    }
    index_.erase(it);
    overlay_.erase(url);
    this->MarkDirty(url);
    return true;
  }

  const Record* Find(const simweb::Url& url) const override {
    return Materialise(url, /*mark_dirty=*/false);
  }

  Record* FindMutable(const simweb::Url& url) override {
    Record* r = Materialise(url, /*mark_dirty=*/true);
    if (r != nullptr) this->MarkDirty(url);
    return r;
  }

  bool Contains(const simweb::Url& url) const override {
    return index_.count(url) > 0;
  }

  std::size_t size() const override { return index_.size(); }

  void Clear() override {
    index_.clear();
    overlay_.clear();
    file_.Clear();
    this->MarkCleared();
  }

  /// Compacts dirty records into pages in canonical key order, then
  /// trims the clean overlay down to `overlay_entries` records
  /// (least-recently-used first).
  void Flush() override {
    for (auto& [url, ie] : index_) {
      auto oit = overlay_.find(url);
      if (oit == overlay_.end() || !oit->second.dirty) continue;
      OverlayEntry& oe = oit->second;
      std::string bytes = Codec::Encode(oe.record);
      if (ie.placement == Placement::kPaged) {
        file_.Erase(ie.loc);
        ie.placement = Placement::kUnplaced;
      }
      if (bytes.size() > PageFile::MaxRecordBytes(file_.page_bytes())) {
        ie.placement = Placement::kOversize;  // stays pinned in overlay
        oe.dirty = true;
        continue;
      }
      ie.loc = file_.Insert(bytes);
      ie.placement = Placement::kPaged;
      oe.dirty = false;
    }
    TrimOverlay();
  }

  void ForEach(const ForEachFn& fn) const override {
    MaterialiseAll();
    for (const auto& [url, oe] : overlay_) fn(url, oe.record);
  }

  void ForEachCanonical(const ForEachFn& fn) const override {
    MaterialiseAll();
    for (const auto& [url, ie] : index_) {
      (void)ie;
      fn(url, overlay_.find(url)->second.record);
    }
  }

  StoreStats stats() const override {
    StoreStats s;
    const PageFile::Stats fs = file_.stats();
    s.pages = fs.pages;
    s.cached_pages = fs.cached_pages;
    s.page_evictions = fs.page_evictions;
    s.page_reads = fs.page_reads;
    s.overlay_records = overlay_.size();
    for (const auto& [url, oe] : overlay_) {
      (void)url;
      if (oe.dirty) ++s.dirty_records;
    }
    return s;
  }

 private:
  enum class Placement { kUnplaced, kPaged, kOversize };
  struct IndexEntry {
    PageFile::Loc loc;
    Placement placement = Placement::kUnplaced;
  };
  struct OverlayEntry {
    Record record;
    bool dirty = false;
    uint64_t last_use = 0;
  };

  Record* Materialise(const simweb::Url& url, bool mark_dirty) const {
    auto oit = overlay_.find(url);
    if (oit != overlay_.end()) {
      oit->second.last_use = ++use_clock_;
      if (mark_dirty) oit->second.dirty = true;
      return &oit->second.record;
    }
    auto it = index_.find(url);
    if (it == index_.end()) return nullptr;
    // kUnplaced / kOversize entries always have an overlay record, so
    // reaching here means the record is paged.
    OverlayEntry oe;
    oe.record = Codec::Decode(file_.Read(it->second.loc));
    oe.dirty = mark_dirty;
    oe.last_use = ++use_clock_;
    auto [nit, ok] = overlay_.emplace(url, std::move(oe));
    (void)ok;
    return &nit->second.record;
  }

  void MaterialiseAll() const {
    for (const auto& [url, ie] : index_) {
      (void)ie;
      Materialise(url, /*mark_dirty=*/false);
    }
  }

  void TrimOverlay() {
    if (overlay_.size() <= clean_cap_) return;
    std::vector<std::pair<uint64_t, const simweb::Url*>> clean;
    clean.reserve(overlay_.size());
    for (const auto& [url, oe] : overlay_) {
      if (!oe.dirty) clean.emplace_back(oe.last_use, &url);
    }
    if (overlay_.size() - clean.size() >= clean_cap_) {
      // All clean records must go (dirty/pinned alone exceed the cap).
      for (const auto& [use, url] : clean) {
        (void)use;
        overlay_.erase(*url);
      }
      return;
    }
    std::size_t excess = overlay_.size() - clean_cap_;
    if (excess > clean.size()) excess = clean.size();
    std::sort(clean.begin(), clean.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (std::size_t i = 0; i < excess; ++i) overlay_.erase(*clean[i].second);
  }

  std::map<simweb::Url, IndexEntry, simweb::UrlIdentityLess> index_;
  mutable std::unordered_map<simweb::Url, OverlayEntry, simweb::UrlHash>
      overlay_;
  mutable uint64_t use_clock_ = 0;
  mutable PageFile file_;
  std::size_t clean_cap_;
};

}  // namespace webevo::storage

#endif  // WEBEVO_STORAGE_PAGED_RECORD_STORE_H_
