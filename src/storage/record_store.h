#ifndef WEBEVO_STORAGE_RECORD_STORE_H_
#define WEBEVO_STORAGE_RECORD_STORE_H_

#include <algorithm>
#include <cstddef>
#include <functional>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "simweb/url.h"

namespace webevo::storage {

/// How a RecordStore keeps its records.
struct StoreOptions {
  enum class Backend {
    /// Flat in-memory hash map — the historical behaviour, and the
    /// default. Behaviour-preserving: a store built with kMemory is
    /// bit-identical to the pre-storage-layer code paths.
    kMemory,
    /// Paged, slotted-page disk store: encoded records live in
    /// fixed-size pages of a per-store scratch file, an in-memory
    /// canonical index maps URL -> page location, and an LRU page
    /// cache with dirty accounting bounds resident page bytes. See
    /// docs/STORAGE.md.
    kPaged,
  };
  Backend backend = Backend::kMemory;
  /// Directory for the paged backend's page files ("." when empty).
  std::string dir;
  /// Page size in bytes (paged backend).
  std::size_t page_bytes = 8192;
  /// LRU page-cache capacity, in pages (paged backend).
  std::size_t cache_pages = 256;
  /// Decoded-record overlay: how many *clean* materialised records a
  /// paged store keeps across Flush() calls (dirty records are always
  /// kept until compacted).
  std::size_t overlay_entries = 4096;
};

/// Observability counters for a store (all zero on the memory backend).
struct StoreStats {
  std::size_t pages = 0;           ///< allocated pages
  std::size_t cached_pages = 0;    ///< pages resident in the LRU cache
  std::size_t overlay_records = 0; ///< decoded records materialised
  std::size_t dirty_records = 0;   ///< records awaiting compaction
  std::size_t page_evictions = 0;  ///< cache evictions (write-backs)
  std::size_t page_reads = 0;      ///< pages faulted in from disk
};

/// A keyed record store — the storage abstraction between the crawler's
/// state structures (Collection, AllUrls) and how their records are
/// kept. Two backends share this interface: MapRecordStore (the
/// historical unordered_map) and PagedRecordStore (slotted pages on
/// disk behind an LRU cache).
///
/// Reference contract (both backends): pointers returned by Put, Find
/// and FindMutable, and references passed to ForEach callbacks, stay
/// valid until the next *mutating* call on the store (Put, Erase,
/// Clear, Flush) — exactly the node stability unordered_map gave the
/// pre-storage-layer code.
///
/// Dirty-key tracking: with EnableDirtyTracking(), every Put, Erase
/// and FindMutable records the touched key into a canonical
/// (site, slot, incarnation)-ordered set, which the incremental
/// checkpoint drains into per-batch delta records. The tracked *set*
/// is a pure function of the logical mutations, so it is identical at
/// every shard count.
template <typename Record>
class RecordStore {
 public:
  using ForEachFn =
      std::function<void(const simweb::Url&, const Record&)>;
  using DirtySet = std::set<simweb::Url, simweb::UrlIdentityLess>;

  virtual ~RecordStore() = default;

  /// Inserts or replaces the record; returns a pointer to the stored
  /// copy (stable until the next mutating call).
  virtual Record* Put(const simweb::Url& url, Record&& record) = 0;

  /// Removes a record; false if absent.
  virtual bool Erase(const simweb::Url& url) = 0;

  virtual const Record* Find(const simweb::Url& url) const = 0;

  /// Find for mutation-in-place; marks the key dirty (the caller is
  /// assumed to write through the pointer).
  virtual Record* FindMutable(const simweb::Url& url) = 0;

  virtual bool Contains(const simweb::Url& url) const = 0;
  virtual std::size_t size() const = 0;
  virtual void Clear() = 0;

  /// Barrier hook: compacts mutated records into their pages and trims
  /// the decoded-record overlay (paged backend; no-op on memory).
  /// Invalidates outstanding record pointers.
  virtual void Flush() {}

  /// Visits every record in unspecified order.
  virtual void ForEach(const ForEachFn& fn) const = 0;

  /// Visits every record in ascending (site, slot, incarnation) order.
  virtual void ForEachCanonical(const ForEachFn& fn) const = 0;

  virtual StoreStats stats() const { return {}; }

  void EnableDirtyTracking() { tracking_ = true; }
  bool dirty_tracking() const { return tracking_; }
  const DirtySet& dirty() const { return dirty_; }
  /// Whether Clear() ran while tracking (a record delta cannot express
  /// "everything vanished"; the checkpoint falls back to a full
  /// section).
  bool cleared_while_tracking() const { return cleared_; }
  void ClearDirty() {
    dirty_.clear();
    cleared_ = false;
  }

 protected:
  void MarkDirty(const simweb::Url& url) {
    if (tracking_) dirty_.insert(url);
  }
  void MarkCleared() {
    if (tracking_) {
      cleared_ = true;
      dirty_.clear();
    }
  }

 private:
  bool tracking_ = false;
  bool cleared_ = false;
  DirtySet dirty_;
};

/// The historical in-memory backend: an unordered_map with the
/// interface's reference contract for free.
template <typename Record>
class MapRecordStore final : public RecordStore<Record> {
 public:
  using typename RecordStore<Record>::ForEachFn;

  Record* Put(const simweb::Url& url, Record&& record) override {
    this->MarkDirty(url);
    auto [it, inserted] = map_.insert_or_assign(url, std::move(record));
    (void)inserted;
    return &it->second;
  }

  bool Erase(const simweb::Url& url) override {
    if (map_.erase(url) == 0) return false;
    this->MarkDirty(url);
    return true;
  }

  const Record* Find(const simweb::Url& url) const override {
    auto it = map_.find(url);
    return it == map_.end() ? nullptr : &it->second;
  }

  Record* FindMutable(const simweb::Url& url) override {
    auto it = map_.find(url);
    if (it == map_.end()) return nullptr;
    this->MarkDirty(url);
    return &it->second;
  }

  bool Contains(const simweb::Url& url) const override {
    return map_.count(url) > 0;
  }

  std::size_t size() const override { return map_.size(); }

  void Clear() override {
    map_.clear();
    this->MarkCleared();
  }

  void ForEach(const ForEachFn& fn) const override {
    for (const auto& [url, record] : map_) fn(url, record);
  }

  void ForEachCanonical(const ForEachFn& fn) const override {
    std::vector<const std::pair<const simweb::Url, Record>*> items;
    items.reserve(map_.size());
    for (const auto& item : map_) items.push_back(&item);
    std::sort(items.begin(), items.end(),
              [](const auto* a, const auto* b) {
                return simweb::UrlIdentityLess{}(a->first, b->first);
              });
    for (const auto* item : items) fn(item->first, item->second);
  }

 private:
  std::unordered_map<simweb::Url, Record, simweb::UrlHash> map_;
};

}  // namespace webevo::storage

#endif  // WEBEVO_STORAGE_RECORD_STORE_H_
