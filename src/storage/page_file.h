#ifndef WEBEVO_STORAGE_PAGE_FILE_H_
#define WEBEVO_STORAGE_PAGE_FILE_H_

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <vector>

namespace webevo::storage {

/// A scratch file of fixed-size slotted pages with an LRU write-back
/// page cache.
///
/// Page layout (within a page_bytes buffer):
///
///     [u16 nslots][u16 off, u16 len] * nslots ... gap ... [cells]
///
/// Cells are packed from the page's end downward; the slot directory
/// grows from the front. Erasing a record tombstones its directory
/// entry (off = 0xFFFF); the slot index is reused by a later insert,
/// and the page is compacted in place when the gap is too small for a
/// fit that the page's total free bytes allow.
///
/// The file is *scratch* storage: the slot directories and free-space
/// accounting live in memory for the file's lifetime, records are
/// durable only through checkpoints, and the file is removed by the
/// destructor. There is deliberately no reopen path — recovery is the
/// checkpoint layer's job (docs/STORAGE.md).
///
/// Not thread-safe; callers serialise access (each crawler shard owns
/// its stores, and cross-shard use happens only in serial phases).
class PageFile {
 public:
  /// A record's address: page number + slot index within the page.
  struct Loc {
    uint64_t page = 0;
    uint16_t slot = 0;
  };

  struct Stats {
    std::size_t pages = 0;
    std::size_t cached_pages = 0;
    std::size_t page_evictions = 0;
    std::size_t page_reads = 0;
    std::size_t live_records = 0;
    std::size_t live_bytes = 0;
  };

  /// Creates (truncates) the backing file. `cache_pages` is clamped to
  /// at least 1.
  PageFile(std::string path, std::size_t page_bytes,
           std::size_t cache_pages);
  ~PageFile();

  PageFile(const PageFile&) = delete;
  PageFile& operator=(const PageFile&) = delete;

  /// Largest record a page of `page_bytes` can hold.
  static std::size_t MaxRecordBytes(std::size_t page_bytes);

  /// Stores `bytes` in the first page that fits (first-fit over page
  /// numbers, allocating a new page at the end when none fits). The
  /// record must satisfy bytes.size() <= MaxRecordBytes(page_bytes).
  Loc Insert(const std::string& bytes);

  /// Reads the record at `loc` (which must be live).
  std::string Read(const Loc& loc);

  /// Tombstones the record at `loc` (which must be live).
  void Erase(const Loc& loc);

  /// Drops every page and truncates the file.
  void Clear();

  const std::string& path() const { return path_; }
  std::size_t page_bytes() const { return page_bytes_; }
  Stats stats() const;

  /// A collision-free scratch-file path under `dir` (or "." when
  /// empty): name + process-wide counter suffix.
  static std::string UniquePath(const std::string& dir,
                                const std::string& name);

 private:
  struct Slot {
    uint16_t off = 0xFFFF;  // 0xFFFF = tombstone / never used
    uint16_t len = 0;
  };
  struct PageMeta {
    std::vector<Slot> slots;
    uint16_t cell_floor = 0;   // lowest cell offset (cells end at page_bytes)
    uint32_t live_bytes = 0;   // sum of live cell lengths
    uint16_t live_slots = 0;
  };

  // Free bytes available to a *new* record on the page (accounts for
  // the directory entry a fresh slot would need).
  std::size_t FreeBytes(const PageMeta& meta) const;
  // Contiguous gap between the directory and the lowest cell.
  std::size_t Gap(const PageMeta& meta) const;

  std::vector<char>& PageBuffer(uint64_t page);  // faults in + pins via LRU
  void TouchLru(uint64_t page);
  void EvictIfNeeded(uint64_t except_page);
  void WriteBack(uint64_t page, const std::vector<char>& buf);
  void CompactPage(uint64_t page, PageMeta& meta, std::vector<char>& buf);

  std::string path_;
  std::size_t page_bytes_;
  std::size_t cache_cap_;
  int fd_ = -1;

  std::vector<PageMeta> pages_;
  struct CacheEntry {
    std::vector<char> buf;
    bool dirty = false;
    std::list<uint64_t>::iterator lru_it;
  };
  std::unordered_map<uint64_t, CacheEntry> cache_;
  std::list<uint64_t> lru_;  // front = most recent
  std::size_t page_evictions_ = 0;
  std::size_t page_reads_ = 0;
};

}  // namespace webevo::storage

#endif  // WEBEVO_STORAGE_PAGE_FILE_H_
