#include "storage/delta_log.h"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/hash.h"

namespace webevo::storage {

namespace {

// Appends `bytes` to `path` followed by fsync; `bytes` may be a
// truncated segment when the crash hook fires.
Status AppendAndSync(const std::string& path, const std::string& bytes) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) {
    return Status::Internal("delta log: cannot open " + path);
  }
  const char* p = bytes.data();
  std::size_t left = bytes.size();
  while (left > 0) {
    ssize_t n = ::write(fd, p, left);
    if (n <= 0) {
      ::close(fd);
      return Status::Internal("delta log: short write to " + path);
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    return Status::Internal("delta log: fsync failed on " + path);
  }
  ::close(fd);
  return Status::Ok();
}

// 1-based index of the next AppendDeltaSegment call in this process,
// for the crash-injection hook.
std::atomic<uint64_t> g_append_count{0};

}  // namespace

const DeltaSection* DeltaSegment::FindSection(
    const std::string& name) const {
  for (const DeltaSection& s : sections) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

std::string EncodeDeltaSegment(const DeltaSegment& segment) {
  std::ostringstream header;
  header << kDeltaMagic << ' ' << kDeltaFormatVersion << ' '
         << segment.kind << ' ' << segment.batch << ' '
         << segment.sections.size() << ' ';
  std::string payload;
  std::ostringstream table;
  for (const DeltaSection& s : segment.sections) {
    table << "S " << s.name << ' ' << s.bytes.size() << ' '
          << Fnv1a64(s.bytes) << '\n';
    payload += s.bytes;
  }
  header << payload.size() << '\n' << table.str();
  std::string head = header.str();
  head += "H " + std::to_string(Fnv1a64(head)) + '\n';
  return head + payload + "Z " + std::to_string(Fnv1a64(payload)) + '\n';
}

Status AppendDeltaSegment(const std::string& path,
                          const DeltaSegment& segment) {
  if (segment.sections.size() > kMaxDeltaSections) {
    return Status::InvalidArgument("delta segment: too many sections");
  }
  std::string bytes = EncodeDeltaSegment(segment);

  const uint64_t nth =
      g_append_count.fetch_add(1, std::memory_order_relaxed) + 1;
  const char* crash_at = std::getenv("WEBEVO_CRASH_AT_DELTA_SEGMENT");
  if (crash_at != nullptr &&
      nth == static_cast<uint64_t>(std::atoll(crash_at))) {
    // Simulate a crash between the WAL append and the seal: the header
    // and part of the payload reach the disk, the `Z` seal never does.
    const std::string::size_type seal =
        bytes.rfind("\nZ ") != std::string::npos
            ? bytes.rfind("\nZ ") + 1
            : bytes.size();
    const std::string::size_type cut = seal - (bytes.size() - seal) / 2 - 1;
    Status torn = AppendAndSync(path, bytes.substr(0, cut));
    (void)torn;
    ::_exit(17);
  }

  return AppendAndSync(path, bytes);
}

StatusOr<DeltaLogContents> ReadDeltaLog(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  DeltaLogContents contents;
  if (!in) return contents;  // no log = empty
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  std::size_t pos = 0;
  while (pos < data.size()) {
    const std::size_t segment_start = pos;
    // A structural parse failure is a torn tail (not an error) when no
    // further segment header follows — a crash can tear the log at any
    // byte, including a line boundary. Failures *before* a later
    // segment, and checksum mismatches on fully-present data, are
    // corruption.
    const bool last_candidate =
        data.find(std::string("\n") + kDeltaMagic + " ",
                  segment_start) == std::string::npos;
    // --- header line
    std::size_t eol = data.find('\n', pos);
    if (eol == std::string::npos) break;  // torn tail
    std::istringstream head(data.substr(pos, eol - pos));
    std::string magic, kind;
    int version = 0;
    uint64_t batch = 0;
    std::size_t nsections = 0, payload_bytes = 0;
    if (!(head >> magic >> version >> kind >> batch >> nsections >>
          payload_bytes) ||
        magic != kDeltaMagic) {
      if (last_candidate) break;
      return Status::InvalidArgument(
          "delta log: bad segment header in " + path);
    }
    if (version != kDeltaFormatVersion) {
      return Status::InvalidArgument("delta log: unsupported version " +
                                     std::to_string(version));
    }
    if (nsections > kMaxDeltaSections) {
      return Status::InvalidArgument(
          "delta log: segment section count out of range");
    }
    std::string header_lines = data.substr(pos, eol - pos + 1);
    pos = eol + 1;
    // --- section table
    struct TableEntry {
      std::string name;
      std::size_t len;
      uint64_t hash;
    };
    std::vector<TableEntry> table;
    bool torn = false;
    for (std::size_t i = 0; i < nsections; ++i) {
      eol = data.find('\n', pos);
      if (eol == std::string::npos) {
        torn = true;
        break;
      }
      std::istringstream line(data.substr(pos, eol - pos));
      std::string tag;
      TableEntry entry;
      if (!(line >> tag >> entry.name >> entry.len >> entry.hash) ||
          tag != "S") {
        if (last_candidate) {
          torn = true;
          break;
        }
        return Status::InvalidArgument(
            "delta log: bad section table line in " + path);
      }
      header_lines += data.substr(pos, eol - pos + 1);
      table.push_back(std::move(entry));
      pos = eol + 1;
    }
    if (torn) {
      pos = segment_start;
      break;
    }
    // --- header checksum line
    eol = data.find('\n', pos);
    if (eol == std::string::npos) {
      pos = segment_start;
      break;  // torn tail
    }
    {
      std::istringstream line(data.substr(pos, eol - pos));
      std::string tag;
      uint64_t hash = 0;
      if (!(line >> tag >> hash) || tag != "H") {
        if (last_candidate) {
          pos = segment_start;
          break;
        }
        return Status::InvalidArgument(
            "delta log: missing header checksum in " + path);
      }
      if (hash != Fnv1a64(header_lines)) {
        return Status::InvalidArgument(
            "delta log: header checksum mismatch in " + path);
      }
    }
    pos = eol + 1;
    // --- payload
    if (data.size() - pos < payload_bytes) {
      pos = segment_start;
      break;  // torn tail
    }
    const std::string payload = data.substr(pos, payload_bytes);
    pos += payload_bytes;
    // --- seal
    eol = data.find('\n', pos);
    if (eol == std::string::npos) {
      pos = segment_start;
      break;  // torn tail (seal missing)
    }
    {
      std::istringstream line(data.substr(pos, eol - pos));
      std::string tag;
      uint64_t hash = 0;
      if (!(line >> tag >> hash) || tag != "Z") {
        if (last_candidate) {
          pos = segment_start;
          break;
        }
        return Status::InvalidArgument(
            "delta log: missing seal in " + path);
      }
      if (hash != Fnv1a64(payload)) {
        return Status::InvalidArgument(
            "delta log: payload checksum mismatch in " + path);
      }
    }
    pos = eol + 1;
    // --- slice sections out of the payload
    DeltaSegment segment;
    segment.kind = kind;
    segment.batch = batch;
    std::size_t off = 0;
    std::size_t total = 0;
    for (const TableEntry& entry : table) total += entry.len;
    if (total != payload_bytes) {
      return Status::InvalidArgument(
          "delta log: section table disagrees with payload size");
    }
    for (const TableEntry& entry : table) {
      DeltaSection section;
      section.name = entry.name;
      section.bytes = payload.substr(off, entry.len);
      if (Fnv1a64(section.bytes) != entry.hash) {
        return Status::InvalidArgument("delta log: section '" +
                                       entry.name +
                                       "' checksum mismatch");
      }
      off += entry.len;
      segment.sections.push_back(std::move(section));
    }
    contents.segments.push_back(std::move(segment));
  }
  contents.torn_tail_bytes = data.size() - pos;
  return contents;
}

Status TruncateDeltaLog(const std::string& path) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::Internal("delta log: cannot truncate " + path);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    return Status::Internal("delta log: fsync failed on " + path);
  }
  ::close(fd);
  return Status::Ok();
}

}  // namespace webevo::storage
