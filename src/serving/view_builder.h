#ifndef WEBEVO_SERVING_VIEW_BUILDER_H_
#define WEBEVO_SERVING_VIEW_BUILDER_H_

#include <memory>

#include "serving/batch_view.h"

namespace webevo::crawler {
class IncrementalCrawler;
class PeriodicCrawler;
}  // namespace webevo::crawler

namespace webevo::serving {

/// Materialises an immutable BatchView of the crawler's current state:
/// the pages / sites / freshness / estimates relations in canonical
/// order plus the deterministic counter summary. Serial-phase only —
/// call at a batch boundary (the crawlers publish through
/// ShardedCrawlEngine::PublishView; LoadCrawler rebuilds a view of the
/// restored state the same way), never while a batch is in flight.
///
/// Determinism: every row is derived through canonical-order walks
/// (ascending URL identity / site / sample time), so the view built at
/// crawl_parallelism = 1 and = 8 serializes to identical bytes.
std::unique_ptr<const BatchView> BuildBatchView(
    const crawler::IncrementalCrawler& crawler);
std::unique_ptr<const BatchView> BuildBatchView(
    const crawler::PeriodicCrawler& crawler);

}  // namespace webevo::serving

#endif  // WEBEVO_SERVING_VIEW_BUILDER_H_
