#ifndef WEBEVO_SERVING_BATCH_VIEW_H_
#define WEBEVO_SERVING_BATCH_VIEW_H_

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "simweb/url.h"

namespace webevo::serving {

class ViewRegistry;

/// One `pages` row: the queryable face of a stored collection entry.
/// Rows are kept in ascending URL identity order — the canonical
/// (site, slot, incarnation) order every snapshot writer uses — so a
/// view's bytes are a pure function of the crawl state at every shard
/// count, and site-equality scans can stop early.
struct PageRow {
  simweb::Url url;
  uint64_t version = 0;
  double crawled_at = 0.0;
  double importance = 0.0;
  /// UpdateModule change-rate estimate (changes/day; 0 when unknown or
  /// for crawlers without an update module).
  double est_rate = 0.0;
  uint32_t out_links = 0;
};

/// One `sites` row: per-site aggregates over the pages rows, in
/// ascending site order.
struct SiteRow {
  uint32_t site = 0;
  uint64_t pages = 0;
  double mean_importance = 0.0;
  double mean_est_rate = 0.0;
  double last_crawled_at = 0.0;
};

/// One `freshness` row: a (time, value) sample of the tracker's
/// oracle-measured freshness series.
struct SeriesRow {
  double time = 0.0;
  double value = 0.0;
};

/// One `estimates` row: a page the change-rate machinery has signal
/// for (rate > 0), with the revisit-relevant derived interval.
struct EstimateRow {
  simweb::Url url;
  double rate = 0.0;           ///< estimated changes/day
  double interval_days = 0.0;  ///< 1 / rate
};

/// An immutable, versioned snapshot of one crawler's queryable state,
/// published into a ViewRegistry at an apply barrier (batch boundary)
/// and read concurrently, without locks, while the crawler applies the
/// next batch — the MVCC read surface of the serving layer.
///
/// Contents are *deterministic*: every row vector is in canonical
/// order and every field is a pure function of the simulation, so the
/// N = 1 and N = 8 runs of one crawl publish byte-identical views
/// (Serialize()/Fingerprint() are part of the determinism smoke).
/// Wall-clock quantities are deliberately excluded.
///
/// Lifetime: views are created by the publisher, handed to a
/// ViewRegistry, and destroyed only when both (a) the registry has
/// retired them (more than K newer views exist) and (b) every reader
/// reference has been released — a reader may hold a view across any
/// number of subsequent batches and it stays valid and unchanged.
class BatchView {
 public:
  BatchView() = default;
  BatchView(const BatchView&) = delete;
  BatchView& operator=(const BatchView&) = delete;

  /// --- Identity ----------------------------------------------------
  /// Completed engine batches at publish time (the crawler's
  /// batches_completed()).
  uint64_t batch = 0;
  /// The crawl clock (simulated days) at publish time.
  double published_at = 0.0;
  /// "incremental" or "periodic".
  std::string crawler;

  /// --- Collection summary -------------------------------------------
  uint64_t collection_size = 0;
  uint64_t collection_capacity = 0;
  /// URLs queued in the frontier (the incremental crawler's
  /// ShardedFrontier; the periodic crawler's BFS deque).
  uint64_t frontier_depth = 0;
  /// Deterministic counters and the capacity-lease ledger, as
  /// canonical (name, value) pairs in the builder's fixed order.
  /// Values are formatted with the snapshot writers' 17-digit
  /// precision so the pairs round-trip bit-exactly.
  std::vector<std::pair<std::string, std::string>> summary;

  /// --- Relations ----------------------------------------------------
  std::vector<PageRow> pages;          ///< ascending URL identity
  std::vector<SiteRow> sites;          ///< ascending site
  std::vector<SeriesRow> freshness;    ///< ascending time
  std::vector<EstimateRow> estimates;  ///< ascending URL identity

  /// Writes the view as a trailer-framed text stream in the canonical
  /// snapshot idiom:
  ///   webevo-batchview 1 <crawler> <batch> <published_at> <size>
  ///     <capacity> <frontier> <npages> <nsites> <nfresh> <nest> <nsum>
  ///   K <name> <value>           (summary pairs, builder order)
  ///   P <site> <slot> <inc> <version> <crawled_at> <importance>
  ///     <est_rate> <out_links>
  ///   S <site> <pages> <mean_importance> <mean_est_rate> <last>
  ///   F <time> <value>
  ///   E <site> <slot> <inc> <rate> <interval>
  ///   webevo-checksum <fnv64>
  /// Equal logical views serialize to equal bytes — the byte-identity
  /// the N = 1 vs N = 8 determinism gate fingerprints.
  void Serialize(std::ostream& out) const;

  /// FNV-1a 64 of the Serialize() bytes.
  uint64_t Fingerprint() const;

 private:
  friend class ViewRegistry;
  /// Reference count: 1 registry retain (dropped at retirement) plus
  /// one per outstanding reader Acquire.
  mutable std::atomic<uint32_t> refs_{1};
};

}  // namespace webevo::serving

#endif  // WEBEVO_SERVING_BATCH_VIEW_H_
