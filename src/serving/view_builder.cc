#include "serving/view_builder.h"

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "crawler/incremental_crawler.h"
#include "crawler/periodic_crawler.h"
#include "freshness/freshness_tracker.h"

namespace webevo::serving {

namespace {

std::string FmtCount(uint64_t v) { return std::to_string(v); }

std::string FmtReal(double v) {
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

/// Streams the canonical page walk into the pages / sites / estimates
/// relations. `entries` must already be in ascending URL identity
/// order; `rate_of` maps a URL to its change-rate estimate (null for
/// crawlers without one).
template <typename RateFn>
void FillRelations(const std::vector<const crawler::CollectionEntry*>&
                       entries,
                   const RateFn& rate_of, BatchView* view) {
  view->pages.reserve(entries.size());
  for (const crawler::CollectionEntry* e : entries) {
    PageRow row;
    row.url = e->url;
    row.version = e->version;
    row.crawled_at = e->crawled_at;
    row.importance = e->importance;
    row.est_rate = rate_of(e->url);
    row.out_links = static_cast<uint32_t>(e->links.size());
    if (row.est_rate > 0.0) {
      view->estimates.push_back(
          EstimateRow{row.url, row.est_rate, 1.0 / row.est_rate});
    }
    // The walk is site-major, so per-site aggregates accumulate in
    // stream order.
    if (view->sites.empty() || view->sites.back().site != row.url.site) {
      view->sites.push_back(SiteRow{row.url.site, 0, 0.0, 0.0, 0.0});
    }
    SiteRow& site = view->sites.back();
    ++site.pages;
    site.mean_importance += row.importance;
    site.mean_est_rate += row.est_rate;
    site.last_crawled_at =
        std::max(site.last_crawled_at, row.crawled_at);
    view->pages.push_back(row);
  }
  for (SiteRow& site : view->sites) {
    const double n = static_cast<double>(site.pages);
    site.mean_importance /= n;
    site.mean_est_rate /= n;
  }
}

void FillFreshness(const freshness::FreshnessTracker& tracker,
                   BatchView* view) {
  view->freshness.reserve(tracker.size());
  for (std::size_t i = 0; i < tracker.size(); ++i) {
    view->freshness.push_back(
        SeriesRow{tracker.times()[i], tracker.values()[i]});
  }
}

void AppendFreshnessSummary(const freshness::FreshnessTracker& tracker,
                            BatchView* view) {
  view->summary.emplace_back("freshness_time_avg",
                             FmtReal(tracker.TimeAverage()));
  view->summary.emplace_back(
      "freshness_last",
      FmtReal(tracker.empty() ? 0.0 : tracker.values().back()));
}

}  // namespace

std::unique_ptr<const BatchView> BuildBatchView(
    const crawler::IncrementalCrawler& crawler) {
  auto view = std::make_unique<BatchView>();
  view->crawler = "incremental";
  view->batch = crawler.batches_completed();
  view->published_at = crawler.now();
  view->collection_size = crawler.collection().size();
  view->collection_capacity = crawler.collection().capacity();
  view->frontier_depth = crawler.coll_urls().size();

  // ForEachCanonical walks ascending URL identity at every shard
  // count; collect pointers once so the relation fill is a single
  // streaming pass.
  std::vector<const crawler::CollectionEntry*> entries;
  entries.reserve(crawler.collection().size());
  crawler.collection().ForEachCanonical(
      [&](const crawler::CollectionEntry& e) { entries.push_back(&e); });
  const crawler::UpdateModule& update = crawler.update_module();
  FillRelations(
      entries,
      [&](const simweb::Url& url) { return update.EstimatedRate(url); },
      view.get());
  FillFreshness(crawler.tracker(), view.get());

  const crawler::IncrementalCrawler::Stats& s = crawler.stats();
  view->summary.emplace_back("crawls", FmtCount(s.crawls));
  view->summary.emplace_back("in_place_updates",
                             FmtCount(s.in_place_updates));
  view->summary.emplace_back("pages_added", FmtCount(s.pages_added));
  view->summary.emplace_back("pages_evicted", FmtCount(s.pages_evicted));
  view->summary.emplace_back("replacements_executed",
                             FmtCount(s.replacements_executed));
  view->summary.emplace_back("dead_pages_removed",
                             FmtCount(s.dead_pages_removed));
  view->summary.emplace_back("changes_detected",
                             FmtCount(s.changes_detected));
  view->summary.emplace_back("politeness_retries",
                             FmtCount(s.politeness_retries));
  view->summary.emplace_back("in_batch_retries",
                             FmtCount(s.in_batch_retries));
  view->summary.emplace_back("lease_budget_granted",
                             FmtCount(s.lease_budget_granted));
  view->summary.emplace_back("lease_admissions",
                             FmtCount(s.lease_admissions));
  view->summary.emplace_back(
      "new_page_latency_mean_days",
      FmtReal(s.new_page_latency_days.count() > 0
                  ? s.new_page_latency_days.mean()
                  : 0.0));
  view->summary.emplace_back("fetch_failures",
                             FmtCount(s.fetch_failures));
  view->summary.emplace_back("transient_errors",
                             FmtCount(s.transient_errors));
  view->summary.emplace_back("timeout_errors",
                             FmtCount(s.timeout_errors));
  view->summary.emplace_back("failure_retries",
                             FmtCount(s.failure_retries));
  view->summary.emplace_back("sites_quarantined",
                             FmtCount(s.sites_quarantined));
  view->summary.emplace_back("urls_retired", FmtCount(s.urls_retired));
  view->summary.emplace_back(
      "backoff_days_total",
      FmtReal(s.backoff_days.count() > 0 ? s.backoff_days.sum() : 0.0));
  // Defense ledger (docs/QUERY_API.md): wasted_fetches accrues with
  // the defense layer on or off; the action counters stay 0 when off.
  view->summary.emplace_back("wasted_fetches",
                             FmtCount(s.wasted_fetches));
  view->summary.emplace_back("trap_sites_throttled",
                             FmtCount(s.trap_sites_throttled));
  view->summary.emplace_back("duplicate_urls_suppressed",
                             FmtCount(s.duplicate_urls_suppressed));
  view->summary.emplace_back("pages_migrated",
                             FmtCount(s.pages_migrated));
  AppendFreshnessSummary(crawler.tracker(), view.get());
  return view;
}

std::unique_ptr<const BatchView> BuildBatchView(
    const crawler::PeriodicCrawler& crawler) {
  auto view = std::make_unique<BatchView>();
  view->crawler = "periodic";
  view->batch = crawler.batches_completed();
  view->published_at = crawler.now();
  const crawler::Collection& collection = crawler.current_collection();
  view->collection_size = collection.size();
  view->collection_capacity = collection.capacity();
  view->frontier_depth = crawler.frontier_depth();

  // The flat Collection iterates in hash-map order; sort into the
  // canonical URL identity order the view contract requires.
  std::vector<const crawler::CollectionEntry*> entries;
  entries.reserve(collection.size());
  collection.ForEach(
      [&](const crawler::CollectionEntry& e) { entries.push_back(&e); });
  std::sort(entries.begin(), entries.end(),
            [](const crawler::CollectionEntry* a,
               const crawler::CollectionEntry* b) {
              return simweb::UrlIdentityLess()(a->url, b->url);
            });
  FillRelations(
      entries, [](const simweb::Url&) { return 0.0; }, view.get());
  FillFreshness(crawler.tracker(), view.get());

  const crawler::PeriodicCrawler::Stats& s = crawler.stats();
  view->summary.emplace_back("crawls", FmtCount(s.crawls));
  view->summary.emplace_back("pages_stored", FmtCount(s.pages_stored));
  view->summary.emplace_back("dead_fetches", FmtCount(s.dead_fetches));
  view->summary.emplace_back("politeness_rejections",
                             FmtCount(s.politeness_rejections));
  view->summary.emplace_back("swaps", FmtCount(s.swaps));
  view->summary.emplace_back(
      "cycles_completed",
      FmtCount(static_cast<uint64_t>(crawler.cycles_completed())));
  view->summary.emplace_back("fetch_failures",
                             FmtCount(s.fetch_failures));
  view->summary.emplace_back("transient_errors",
                             FmtCount(s.transient_errors));
  view->summary.emplace_back("timeout_errors",
                             FmtCount(s.timeout_errors));
  view->summary.emplace_back("failure_retries",
                             FmtCount(s.failure_retries));
  view->summary.emplace_back("failures_dropped",
                             FmtCount(s.failures_dropped));
  AppendFreshnessSummary(crawler.tracker(), view.get());
  return view;
}

}  // namespace webevo::serving
