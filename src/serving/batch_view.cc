#include "serving/batch_view.h"

#include <ostream>
#include <sstream>

#include "util/hash.h"
#include "util/text_snapshot.h"

namespace webevo::serving {

namespace {

constexpr const char* kViewMagic = "webevo-batchview";
constexpr int kViewFormatVersion = 1;

}  // namespace

void BatchView::Serialize(std::ostream& out) const {
  TrailerWriter writer(out);
  {
    std::ostringstream os;
    os.precision(17);
    os << kViewMagic << ' ' << kViewFormatVersion << ' ' << crawler << ' '
       << batch << ' ' << published_at << ' ' << collection_size << ' '
       << collection_capacity << ' ' << frontier_depth << ' '
       << pages.size() << ' ' << sites.size() << ' ' << freshness.size()
       << ' ' << estimates.size() << ' ' << summary.size();
    writer.Line(os.str());
  }
  for (const auto& [name, value] : summary) {
    writer.Line("K " + name + ' ' + value);
  }
  for (const PageRow& p : pages) {
    std::ostringstream os;
    os.precision(17);
    os << "P " << p.url.site << ' ' << p.url.slot << ' '
       << p.url.incarnation << ' ' << p.version << ' ' << p.crawled_at
       << ' ' << p.importance << ' ' << p.est_rate << ' ' << p.out_links;
    writer.Line(os.str());
  }
  for (const SiteRow& s : sites) {
    std::ostringstream os;
    os.precision(17);
    os << "S " << s.site << ' ' << s.pages << ' ' << s.mean_importance
       << ' ' << s.mean_est_rate << ' ' << s.last_crawled_at;
    writer.Line(os.str());
  }
  for (const SeriesRow& f : freshness) {
    std::ostringstream os;
    os.precision(17);
    os << "F " << f.time << ' ' << f.value;
    writer.Line(os.str());
  }
  for (const EstimateRow& e : estimates) {
    std::ostringstream os;
    os.precision(17);
    os << "E " << e.url.site << ' ' << e.url.slot << ' '
       << e.url.incarnation << ' ' << e.rate << ' ' << e.interval_days;
    writer.Line(os.str());
  }
  writer.Finish();
}

uint64_t BatchView::Fingerprint() const {
  std::ostringstream os;
  Serialize(os);
  return Fnv1a64(os.str());
}

}  // namespace webevo::serving
