#include "serving/view_registry.h"

#include <thread>

#include "util/hash.h"

namespace webevo::serving {

ViewRegistry::ViewRegistry(int retention)
    : slots_(retention < 1 ? 1 : static_cast<std::size_t>(retention)) {}

ViewRegistry::~ViewRegistry() { Clear(); }

void ViewRegistry::Unref(const BatchView* view) {
  if (view->refs_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    delete view;
    destroyed_.fetch_add(1, std::memory_order_relaxed);
  }
}

void ViewRegistry::RetireSlot(Slot& slot) {
  if (slot.view == nullptr) return;
  // Make the slot unacquirable, then wait out readers that pinned it
  // before the invalidation: a pinned reader is between its pin and
  // unpin — a handful of instructions (epoch check, refcount bump) —
  // so this spin is bounded and short. Readers that pin afterwards see
  // epoch 0 and never touch `view`.
  //
  // seq_cst is load-bearing: this store and the pins load below form
  // one half of a Dekker-style store-load handshake with Acquire's
  // pin increment and epoch check. With weaker orderings both sides
  // could read stale values — the reader seeing the old epoch while
  // the writer sees zero pins — and the view would be freed under a
  // reader. The single seq_cst total order rules that out: a reader
  // whose epoch check passed ordered its pin before this store, so
  // the drain loop observes it.
  slot.epoch.store(0, std::memory_order_seq_cst);
  while (slot.pins.load(std::memory_order_seq_cst) != 0) {
    std::this_thread::yield();
  }
  Unref(slot.view);
  slot.view = nullptr;
  ++retired_;
}

void ViewRegistry::Publish(std::unique_ptr<const BatchView> view) {
  const BatchView* raw = view.release();
  fingerprint_chain_ = HashCombine(fingerprint_chain_, raw->Fingerprint());
  const uint64_t epoch = ++published_;
  Slot& slot = slots_[epoch % slots_.size()];
  RetireSlot(slot);  // epoch - K, if the ring has wrapped
  // The slot is quiet now: epoch 0 keeps readers away from `view`, so
  // the plain store cannot race (readers only load `view` after
  // observing the matching epoch, which is published below with
  // release ordering).
  slot.view = raw;
  slot.epoch.store(epoch, std::memory_order_release);
  latest_.store(epoch, std::memory_order_release);
}

const BatchView* ViewRegistry::Acquire() {
  for (;;) {
    const uint64_t epoch = latest_.load(std::memory_order_acquire);
    if (epoch == 0) return nullptr;
    Slot& slot = slots_[epoch % slots_.size()];
    // seq_cst pin + epoch check pair with RetireSlot's seq_cst
    // invalidate + drain (see the comment there): if the epoch check
    // passes, the writer is guaranteed to observe this pin.
    slot.pins.fetch_add(1, std::memory_order_seq_cst);
    if (slot.epoch.load(std::memory_order_seq_cst) == epoch) {
      const BatchView* view = slot.view;
      view->refs_.fetch_add(1, std::memory_order_relaxed);
      slot.pins.fetch_sub(1, std::memory_order_release);
      return view;
    }
    // The slot was recycled under us (the writer published K newer
    // views between our latest_ load and the pin, or Clear ran).
    // Unpin and retry against the new latest.
    slot.pins.fetch_sub(1, std::memory_order_release);
  }
}

ViewRef ViewRegistry::AcquireRef() { return ViewRef(this, Acquire()); }

void ViewRegistry::Release(const BatchView* view) {
  if (view != nullptr) Unref(view);
}

void ViewRegistry::Clear() {
  latest_.store(0, std::memory_order_release);
  for (Slot& slot : slots_) RetireSlot(slot);
}

}  // namespace webevo::serving
