#ifndef WEBEVO_SERVING_VIEW_REGISTRY_H_
#define WEBEVO_SERVING_VIEW_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "serving/batch_view.h"

namespace webevo::serving {

class ViewRef;

/// The MVCC publication point between one crawl loop (the single
/// writer, publishing at apply barriers) and any number of concurrent
/// readers: a ring of the K most recent immutable BatchViews, acquired
/// and released lock-free.
///
/// Reader contract:
///   - Acquire() returns the most recently published view (nullptr
///     before the first publish) with a reference held; the view is
///     immutable and stays valid — across any number of subsequent
///     publishes, retirements, even a LoadCrawler restore — until the
///     matching Release(). Acquire/Release are lock-free: a reader
///     never blocks the crawl loop and the crawl loop never blocks a
///     reader (the only reader retry is racing K publishes in one
///     acquire, and the only writer wait is draining readers that are
///     mid-acquire on a recycled slot — a few instructions each).
///   - Retention is deterministic: publishing epoch e retires epoch
///     e - K. A retired view can no longer be acquired; it is
///     *destroyed* once its last reference is released. At most K
///     views are acquirable at any time, exactly the K newest.
///
/// Writer contract: Publish()/Clear() are single-threaded (the crawl
/// loop at a batch boundary; nothing may be mid-batch). The registry
/// also maintains a deterministic fingerprint chain over every view
/// ever published — the serving half of the N = 1 vs N = 8
/// determinism gate.
class ViewRegistry {
 public:
  static constexpr int kDefaultRetention = 4;

  /// Creates a registry retaining the `retention` (>= 1; clamped) most
  /// recent views.
  explicit ViewRegistry(int retention = kDefaultRetention);
  ViewRegistry(const ViewRegistry&) = delete;
  ViewRegistry& operator=(const ViewRegistry&) = delete;

  /// Drops the registry's retained references. Views still held by
  /// readers survive until their Release.
  ~ViewRegistry();

  /// Publishes `view` as the new latest epoch, retiring the view K
  /// epochs back. Writer-only; `view` must be non-null.
  void Publish(std::unique_ptr<const BatchView> view);

  /// Latest published view with a reference held, or nullptr if none.
  /// Lock-free; any thread.
  const BatchView* Acquire();

  /// RAII convenience around Acquire().
  ViewRef AcquireRef();

  /// Releases a reference obtained from Acquire(); destroys the view
  /// if it was retired and this was the last reference. Any thread.
  void Release(const BatchView* view);

  /// Retires every retained view (readers' held references stay
  /// valid); Acquire returns nullptr until the next Publish. Writer-
  /// only — used when a checkpoint restore invalidates the published
  /// history.
  void Clear();

  int retention() const { return static_cast<int>(slots_.size()); }
  /// Epochs published over the registry's lifetime (monotonic; not
  /// reset by Clear).
  uint64_t published() const { return published_; }
  /// Views retired (made unacquirable) so far.
  uint64_t retired() const { return retired_; }
  /// Views actually destroyed (retired and fully released).
  uint64_t destroyed() const {
    return destroyed_.load(std::memory_order_relaxed);
  }
  /// HashCombine chain of every published view's Fingerprint(), in
  /// publish order — a pure function of the simulation, compared
  /// between shard counts by the determinism smoke.
  uint64_t fingerprint_chain() const { return fingerprint_chain_; }

 private:
  struct Slot {
    /// Epoch this slot currently serves (0 = unoccupied/invalidated).
    std::atomic<uint64_t> epoch{0};
    /// Readers mid-acquire on this slot; the writer drains this to
    /// zero after invalidating `epoch` and before touching `view`.
    std::atomic<uint32_t> pins{0};
    const BatchView* view = nullptr;  ///< writer-written, read under pin
  };

  /// Invalidates `slot`, waits out mid-acquire readers, and drops the
  /// registry's reference on its view. Writer-only.
  void RetireSlot(Slot& slot);

  /// Drops one reference on `view`, destroying it at zero.
  void Unref(const BatchView* view);

  std::vector<Slot> slots_;
  std::atomic<uint64_t> latest_{0};  ///< newest acquirable epoch; 0 = none
  uint64_t published_ = 0;           // writer-only
  uint64_t retired_ = 0;             // writer-only
  uint64_t fingerprint_chain_ = 0;   // writer-only
  std::atomic<uint64_t> destroyed_{0};
};

/// Holds one reader reference on a BatchView; releases on destruction.
class ViewRef {
 public:
  ViewRef() = default;
  ViewRef(ViewRegistry* registry, const BatchView* view)
      : registry_(registry), view_(view) {}
  ViewRef(ViewRef&& other) noexcept
      : registry_(other.registry_), view_(other.view_) {
    other.registry_ = nullptr;
    other.view_ = nullptr;
  }
  ViewRef& operator=(ViewRef&& other) noexcept {
    if (this != &other) {
      reset();
      registry_ = other.registry_;
      view_ = other.view_;
      other.registry_ = nullptr;
      other.view_ = nullptr;
    }
    return *this;
  }
  ViewRef(const ViewRef&) = delete;
  ViewRef& operator=(const ViewRef&) = delete;
  ~ViewRef() { reset(); }

  void reset() {
    if (view_ != nullptr) registry_->Release(view_);
    registry_ = nullptr;
    view_ = nullptr;
  }

  const BatchView* get() const { return view_; }
  const BatchView* operator->() const { return view_; }
  const BatchView& operator*() const { return *view_; }
  explicit operator bool() const { return view_ != nullptr; }

 private:
  ViewRegistry* registry_ = nullptr;
  const BatchView* view_ = nullptr;
};

}  // namespace webevo::serving

#endif  // WEBEVO_SERVING_VIEW_REGISTRY_H_
