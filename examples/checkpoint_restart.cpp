// Checkpoint/restart: snapshot the *whole* incremental crawler — the
// collection, the learned change statistics, the frontier schedule,
// the crawl clock and politeness state, and the simulated web's
// evolution state — to one crash-consistent file; "restart" in a
// fresh process; and show the resumed crawler is bit-identical to one
// that never stopped.
//
//   ./build/example_checkpoint_restart

#include <cstdio>
#include <sstream>
#include <string>

#include "crawler/incremental_crawler.h"
#include "crawler/snapshot.h"
#include "simweb/simulated_web.h"
#include "util/table.h"

int main() {
  using namespace webevo;

  simweb::WebConfig web_config = simweb::WebConfig().Scaled(0.08);
  web_config.seed = 2024;
  crawler::IncrementalCrawlerConfig config;
  config.collection_capacity = 800;
  config.crawl_rate_pages_per_day = 800.0 / 30.0;
  const std::string checkpoint_path = "/tmp/webevo_checkpoint.ck";

  // --- Phase 1: crawl for a month, then checkpoint. -------------------
  simweb::SimulatedWeb web(web_config);
  crawler::IncrementalCrawler first(&web, config);
  if (!first.Bootstrap(0.0).ok() || !first.RunUntil(30.0).ok()) {
    std::printf("phase 1 failed\n");
    return 1;
  }
  Status saved = crawler::SaveCrawlerToFile(first, checkpoint_path);
  std::printf("day 30: collection %zu pages, freshness %.3f -> %s\n",
              first.collection().size(), first.MeasureNow().freshness,
              saved.ok() ? checkpoint_path.c_str()
                         : saved.ToString().c_str());
  if (!saved.ok()) return 1;

  // --- Phase 2: "restart" — a brand-new process would do exactly
  // this: rebuild web + crawler from the same config, then restore
  // everything (including the web's evolution state) from the file.
  simweb::SimulatedWeb fresh_web(web_config);
  crawler::IncrementalCrawler resumed(&fresh_web, config);
  Status loaded =
      crawler::LoadCrawlerFromFile(checkpoint_path, &resumed);
  if (!loaded.ok()) {
    std::printf("restore failed: %s\n", loaded.ToString().c_str());
    return 1;
  }
  std::printf("restored at day %.1f: %zu pages, %zu tracked page "
              "statistics, %zu queued URLs\n",
              resumed.now(), resumed.collection().size(),
              resumed.update_module().tracked_pages(),
              resumed.coll_urls().size());

  // --- Phase 3: both crawlers run another month; the resumed one must
  // shadow the uninterrupted one bit for bit.
  if (!first.RunUntil(60.0).ok() || !resumed.RunUntil(60.0).ok()) {
    std::printf("phase 3 failed\n");
    return 1;
  }
  std::ostringstream a, b;
  if (!crawler::SaveCrawler(first, a).ok() ||
      !crawler::SaveCrawler(resumed, b).ok()) {
    std::printf("final snapshot failed\n");
    return 1;
  }
  TablePrinter table({"metric", "uninterrupted", "resumed"});
  table.AddRow({"pages",
                TablePrinter::Fmt(
                    static_cast<int64_t>(first.collection().size())),
                TablePrinter::Fmt(
                    static_cast<int64_t>(resumed.collection().size()))});
  table.AddRow({"crawls",
                TablePrinter::Fmt(
                    static_cast<int64_t>(first.stats().crawls)),
                TablePrinter::Fmt(
                    static_cast<int64_t>(resumed.stats().crawls))});
  table.AddRow({"freshness",
                TablePrinter::Fmt(first.MeasureNow().freshness),
                TablePrinter::Fmt(resumed.MeasureNow().freshness)});
  std::printf("\nday 60, after a mid-run restart:\n%s",
              table.ToString().c_str());
  std::printf("\nfinal checkpoints byte-identical: %s\n",
              a.str() == b.str() ? "yes" : "NO");
  return a.str() == b.str() ? 0 : 1;
}
