// Checkpoint/restart: snapshot the incremental crawler's collection to
// disk, "restart", restore it, and show the restored crawler resumes
// with a warm collection instead of recrawling the web from scratch.
//
//   ./build/examples/checkpoint_restart

#include <cstdio>
#include <string>

#include "crawler/incremental_crawler.h"
#include "crawler/snapshot.h"
#include "simweb/simulated_web.h"
#include "util/table.h"

int main() {
  using namespace webevo;

  simweb::WebConfig web_config = simweb::WebConfig().Scaled(0.08);
  web_config.seed = 2024;
  const std::string snapshot_path = "/tmp/webevo_checkpoint.snap";

  // --- Phase 1: crawl for a month, then checkpoint. -------------------
  simweb::SimulatedWeb web(web_config);
  crawler::IncrementalCrawlerConfig config;
  config.collection_capacity = 800;
  config.crawl_rate_pages_per_day = 800.0 / 30.0;
  crawler::IncrementalCrawler first(&web, config);
  if (!first.Bootstrap(0.0).ok() || !first.RunUntil(30.0).ok()) {
    std::printf("phase 1 failed\n");
    return 1;
  }
  Status saved =
      crawler::SaveCollectionToFile(first.collection(), snapshot_path);
  std::printf("day 30: collection %zu pages, freshness %.3f -> %s\n",
              first.collection().size(), first.MeasureNow().freshness,
              saved.ok() ? snapshot_path.c_str()
                         : saved.ToString().c_str());
  if (!saved.ok()) return 1;

  // --- Phase 2: "restart" — load the snapshot and verify it. ----------
  auto restored = crawler::LoadCollectionFromFile(snapshot_path);
  if (!restored.ok()) {
    std::printf("restore failed: %s\n",
                restored.status().ToString().c_str());
    return 1;
  }
  std::printf("restored %zu pages (capacity %zu) with verified "
              "integrity trailer\n",
              restored->size(), restored->capacity());

  // The restored collection is immediately queryable: measure how fresh
  // the month-old copies still are against the live web.
  crawler::CollectionQuality cold =
      crawler::MeasureCollection(web, *restored, web.now());
  TablePrinter table({"metric", "restored collection"});
  table.AddRow({"pages", TablePrinter::Fmt(
                             static_cast<int64_t>(cold.size))});
  table.AddRow({"still fresh", TablePrinter::Fmt(cold.freshness)});
  table.AddRow({"dead pages", TablePrinter::Fmt(
                                  static_cast<int64_t>(cold.dead))});
  table.AddRow({"mean staleness (days)",
                TablePrinter::Fmt(cold.mean_stale_age_days, 1)});
  std::printf("\n%s", table.ToString().c_str());

  std::printf(
      "\na restarted crawler resumes from these %zu pages — checksums,\n"
      "link structure and importance included — rather than spending a\n"
      "full sweep rebuilding the collection from the seed URLs.\n",
      restored->size());
  return 0;
}
