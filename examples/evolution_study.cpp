// Reproduces the paper's measurement study (Sections 2-3) at laptop
// scale: monitor a calibrated synthetic web daily for four months with
// the page-window scheme and print the Figure 2/4/5 statistics.
//
//   ./build/examples/evolution_study [days]

#include <cstdio>
#include <cstdlib>

#include "experiment/analyzers.h"
#include "experiment/monitoring_experiment.h"
#include "simweb/simulated_web.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace webevo;
  using namespace webevo::experiment;

  int days = argc > 1 ? std::atoi(argv[1]) : 128;
  if (days < 2) days = 2;

  simweb::WebConfig web_config = simweb::WebConfig().Scaled(0.15);
  web_config.seed = 19990217;
  simweb::SimulatedWeb web(web_config);

  MonitoringConfig config;
  config.num_days = days;
  config.window_size = 150;
  MonitoringExperiment experiment(&web, config);
  std::printf("monitoring %u sites daily for %d days...\n",
              web.num_sites(), days);
  Status st = experiment.Run();
  if (!st.ok()) {
    std::printf("experiment failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("done: %llu fetches, %zu distinct pages sighted\n\n",
              static_cast<unsigned long long>(experiment.total_fetches()),
              experiment.table().num_pages());

  // --- Figure 2: how often does a page change? -----------------------
  ChangeIntervalResult change = AnalyzeChangeIntervals(experiment.table());
  std::printf("average change interval, all domains (Figure 2a):\n%s\n",
              change.overall.ToString().c_str());
  TablePrinter fig2b({"bucket", "com", "edu", "netorg", "gov"});
  for (std::size_t b = 0; b < change.overall.num_buckets(); ++b) {
    std::vector<std::string> row = {change.overall.bucket_label(b)};
    for (simweb::Domain d : simweb::kAllDomains) {
      row.push_back(TablePrinter::Percent(
          change.by_domain[static_cast<int>(d)].fraction(b)));
    }
    fig2b.AddRow(row);
  }
  std::printf("per domain (Figure 2b):\n%s\n", fig2b.ToString().c_str());

  // --- Figure 4: lifespans -------------------------------------------
  LifespanResult life = AnalyzeLifespans(experiment.table(), days);
  TablePrinter fig4({"bucket", "method 1", "method 2"});
  for (std::size_t b = 0; b < life.method1.num_buckets(); ++b) {
    fig4.AddRow({life.method1.bucket_label(b),
                 TablePrinter::Percent(life.method1.fraction(b)),
                 TablePrinter::Percent(life.method2.fraction(b))});
  }
  std::printf("visible lifespan (Figure 4a):\n%s\n",
              fig4.ToString().c_str());

  // --- Figure 5: how long until 50%% of the web changed? --------------
  SurvivalResult survival = AnalyzeSurvival(experiment.table(), days);
  std::printf("fraction unchanged by day (Figure 5a):\n%s",
              AsciiChart(survival.day, survival.overall, 0.0, 1.0)
                  .c_str());
  int half = SurvivalResult::DaysToReach(survival.overall, 0.5);
  std::printf("\n50%% of pages changed or disappeared by day: %s\n",
              half >= 0 ? TablePrinter::Fmt(static_cast<int64_t>(half))
                              .c_str()
                        : "beyond horizon");
  for (simweb::Domain d : simweb::kAllDomains) {
    int dh = SurvivalResult::DaysToReach(
        survival.by_domain[static_cast<int>(d)], 0.5);
    std::printf("  %-6s: %s\n", simweb::DomainName(d).data(),
                dh >= 0 ? TablePrinter::Fmt(static_cast<int64_t>(dh))
                              .c_str()
                        : "beyond horizon");
  }
  return 0;
}
