// Compares the crawler design choices of Section 4 head to head on one
// evolving synthetic web: batch vs steady, shadowing vs in-place, and
// the full incremental crawler — printing freshness, peak load and
// new-page timeliness (the Figure 10 trade-off table).
//
//   ./build/examples/policy_comparison

#include <cstdio>
#include <string>

#include "crawler/incremental_crawler.h"
#include "crawler/periodic_crawler.h"
#include "simweb/simulated_web.h"
#include "util/table.h"

namespace {

using namespace webevo;

constexpr std::size_t kCapacity = 2000;
constexpr double kHorizonDays = 120.0;
constexpr double kCycleDays = 30.0;

simweb::WebConfig MakeWeb() {
  simweb::WebConfig c = simweb::WebConfig().Scaled(0.12);
  c.seed = 1999;
  return c;
}

struct Row {
  std::string name;
  double freshness = 0.0;
  double peak = 0.0;
  double average = 0.0;
};

Row RunPeriodic(const std::string& name, double window, bool shadowing) {
  simweb::SimulatedWeb web(MakeWeb());
  crawler::PeriodicCrawlerConfig config;
  config.collection_capacity = kCapacity;
  config.cycle_days = kCycleDays;
  config.crawl_window_days = window;
  config.shadowing = shadowing;
  crawler::PeriodicCrawler crawler(&web, config);
  if (!crawler.Bootstrap(0.0).ok() ||
      !crawler.RunUntil(kHorizonDays).ok()) {
    std::printf("%s failed\n", name.c_str());
    return {name};
  }
  Row row{name};
  row.freshness = crawler.tracker().TimeAverage(2 * kCycleDays,
                                                kHorizonDays);
  row.peak = crawler.crawl_module().PeakDailyRate();
  row.average = crawler.crawl_module().AverageDailyRate();
  return row;
}

Row RunIncremental(const std::string& name,
                   crawler::RevisitPolicy policy) {
  simweb::SimulatedWeb web(MakeWeb());
  crawler::IncrementalCrawlerConfig config;
  config.collection_capacity = kCapacity;
  config.crawl_rate_pages_per_day = kCapacity / kCycleDays;
  config.update.policy = policy;
  crawler::IncrementalCrawler crawler(&web, config);
  if (!crawler.Bootstrap(0.0).ok() ||
      !crawler.RunUntil(kHorizonDays).ok()) {
    std::printf("%s failed\n", name.c_str());
    return {name};
  }
  Row row{name};
  row.freshness = crawler.tracker().TimeAverage(2 * kCycleDays,
                                                kHorizonDays);
  row.peak = crawler.crawl_module().PeakDailyRate();
  row.average = crawler.crawl_module().AverageDailyRate();
  std::printf("  [%s] new-page latency: %.1f days avg over %lld pages\n",
              name.c_str(),
              crawler.stats().new_page_latency_days.count() > 0
                  ? crawler.stats().new_page_latency_days.mean()
                  : 0.0,
              static_cast<long long>(
                  crawler.stats().new_page_latency_days.count()));
  return row;
}

}  // namespace

int main() {
  std::printf(
      "all crawlers: %zu-page collection, one full sweep per %0.f days,"
      " %.0f simulated days\n\n",
      kCapacity, kCycleDays, kHorizonDays);

  Row rows[] = {
      RunPeriodic("batch + shadowing (periodic crawler)", 7.0, true),
      RunPeriodic("batch + in-place", 7.0, false),
      RunPeriodic("steady + shadowing", kCycleDays, true),
      RunPeriodic("steady + in-place, fixed freq", kCycleDays, false),
      RunIncremental("incremental (optimal revisit)",
                     webevo::crawler::RevisitPolicy::kOptimal),
      RunIncremental("incremental (uniform revisit)",
                     webevo::crawler::RevisitPolicy::kUniform),
  };

  webevo::TablePrinter table(
      {"crawler", "freshness", "peak pages/day", "avg pages/day"});
  for (const Row& row : rows) {
    table.AddRow({row.name, webevo::TablePrinter::Fmt(row.freshness),
                  webevo::TablePrinter::Fmt(row.peak, 0),
                  webevo::TablePrinter::Fmt(row.average, 0)});
  }
  std::printf("\n%s", table.ToString().c_str());
  std::printf(
      "\nexpected shape (paper, Section 4 / Figure 10): the incremental\n"
      "crawler wins on freshness at a far lower peak load; shadowing\n"
      "hurts the steady crawler much more than the batch crawler.\n");
  return 0;
}
