// Quickstart: build a small synthetic web, run the paper's incremental
// crawler on it for two simulated months, and print what it achieved.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "crawler/incremental_crawler.h"
#include "simweb/simulated_web.h"
#include "util/table.h"

int main() {
  using namespace webevo;

  // 1. A synthetic web: 27 sites with the paper's domain mix, pages
  //    changing/dying per the calibrated 1999-web profiles.
  simweb::WebConfig web_config = simweb::WebConfig().Scaled(0.1);
  web_config.seed = 42;
  simweb::SimulatedWeb web(web_config);
  std::printf("web: %u sites, %llu page slots\n", web.num_sites(),
              static_cast<unsigned long long>(web.TotalSlots()));

  // 2. An incremental crawler: steady speed, in-place updates,
  //    freshness-optimal variable revisit frequency (Figure 12).
  crawler::IncrementalCrawlerConfig config;
  config.collection_capacity = 1500;
  config.crawl_rate_pages_per_day = 1500.0 / 30.0;  // one sweep a month
  crawler::IncrementalCrawler crawler(&web, config);

  Status st = crawler.Bootstrap(0.0);
  if (!st.ok()) {
    std::printf("bootstrap failed: %s\n", st.ToString().c_str());
    return 1;
  }
  st = crawler.RunUntil(60.0);  // two months
  if (!st.ok()) {
    std::printf("run failed: %s\n", st.ToString().c_str());
    return 1;
  }

  // 3. Results: oracle-measured freshness plus the crawler's own view.
  crawler::CollectionQuality quality = crawler.MeasureNow();
  const auto& stats = crawler.stats();
  TablePrinter table({"metric", "value"});
  table.AddRow({"collection size", TablePrinter::Fmt(
                                       static_cast<int64_t>(quality.size))});
  table.AddRow({"freshness (now)", TablePrinter::Fmt(quality.freshness)});
  table.AddRow({"freshness (30d avg)",
                TablePrinter::Fmt(crawler.tracker().TimeAverage(30.0,
                                                                60.0))});
  table.AddRow({"total crawls",
                TablePrinter::Fmt(static_cast<int64_t>(stats.crawls))});
  table.AddRow({"changes detected",
                TablePrinter::Fmt(
                    static_cast<int64_t>(stats.changes_detected))});
  table.AddRow({"dead pages removed",
                TablePrinter::Fmt(
                    static_cast<int64_t>(stats.dead_pages_removed))});
  table.AddRow({"refinement replacements",
                TablePrinter::Fmt(
                    static_cast<int64_t>(stats.replacements_executed))});
  table.AddRow(
      {"new-page latency (days, avg)",
       TablePrinter::Fmt(stats.new_page_latency_days.count() > 0
                             ? stats.new_page_latency_days.mean()
                             : 0.0)});
  table.AddRow({"peak crawl rate (pages/day)",
                TablePrinter::Fmt(crawler.crawl_module().PeakDailyRate())});
  std::printf("\n%s", table.ToString().c_str());

  // 4. The freshness trajectory (Figure 7(b)-style steady curve).
  std::printf("\ncollection freshness over time:\n%s",
              AsciiChart(crawler.tracker().times(),
                         crawler.tracker().values(), 0.0, 1.0)
                  .c_str());
  return 0;
}
