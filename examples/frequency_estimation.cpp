// Demonstrates the change-frequency estimators behind the UpdateModule
// (Section 5.3 / [CGM99a]): naive, EP (Poisson + confidence interval),
// EB (Bayesian frequency classes) and the bias-corrected ratio
// estimator, racing them on simulated pages of known rates.
//
//   ./build/examples/frequency_estimation

#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "estimator/bayesian_estimator.h"
#include "estimator/change_estimator.h"
#include "estimator/poisson_ci_estimator.h"
#include "util/random.h"
#include "util/table.h"

int main() {
  using namespace webevo;
  using namespace webevo::estimator;

  Rng rng(7);
  const double true_intervals[] = {2.0, 10.0, 45.0};  // days
  const int visits = 120;  // daily visits for four months

  TablePrinter table({"true interval", "naive", "EP", "EP 95% CI", "EB",
                      "ratio"});
  for (double interval : true_intervals) {
    const double rate = 1.0 / interval;
    std::vector<std::unique_ptr<ChangeEstimator>> estimators;
    estimators.push_back(MakeEstimator(EstimatorKind::kNaive));
    estimators.push_back(MakeEstimator(EstimatorKind::kPoissonCi));
    estimators.push_back(MakeEstimator(EstimatorKind::kBayesian));
    estimators.push_back(MakeEstimator(EstimatorKind::kRatio));

    for (int day = 0; day < visits; ++day) {
      bool changed = rng.NextDouble() < 1.0 - std::exp(-rate);
      for (auto& est : estimators) est->RecordObservation(1.0, changed);
    }

    auto* ep = static_cast<PoissonCiEstimator*>(estimators[1].get());
    Interval ci = ep->RateInterval(0.95);
    auto interval_of = [](double r) {
      return r > 0.0 ? TablePrinter::Fmt(1.0 / r, 1) : std::string("inf");
    };
    table.AddRow({TablePrinter::Fmt(interval, 1) + "d",
                  interval_of(estimators[0]->EstimatedRate()) + "d",
                  interval_of(estimators[1]->EstimatedRate()) + "d",
                  "[" + interval_of(ci.hi) + ", " + interval_of(ci.lo) +
                      "]d",
                  interval_of(estimators[2]->EstimatedRate()) + "d",
                  interval_of(estimators[3]->EstimatedRate()) + "d"});
  }
  std::printf("estimated mean change interval after %d daily visits:\n%s",
              visits, table.ToString().c_str());

  // EB's posterior in action: watch a weekly page get classified.
  std::printf("\nEB posterior evolution for a page changing weekly:\n");
  BayesianEstimator eb;  // classes: day/week/month/4months/year
  Rng rng2(11);
  TablePrinter posterior(
      {"after visit", "P{daily}", "P{weekly}", "P{monthly}", "P{4mo}",
       "P{yearly}"});
  const double weekly_rate = 1.0 / 7.0;
  for (int day = 1; day <= 56; ++day) {
    bool changed = rng2.NextDouble() < 1.0 - std::exp(-weekly_rate);
    eb.RecordObservation(1.0, changed);
    if (day % 14 == 0) {
      std::vector<std::string> row = {TablePrinter::Fmt(
          static_cast<int64_t>(day))};
      for (double p : eb.posterior()) {
        row.push_back(TablePrinter::Fmt(p, 3));
      }
      posterior.AddRow(row);
    }
  }
  std::printf("%s", posterior.ToString().c_str());
  std::printf("\nMAP class interval: %.0f days (true: 7)\n",
              1.0 / eb.MapRate());
  return 0;
}
