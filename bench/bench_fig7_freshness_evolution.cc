// Figure 7 — freshness evolution of (a) a batch-mode crawler and (b) a
// steady crawler, from the analytic Poisson model (as in the paper) and
// cross-checked against a full crawler simulation.

#include <cstdio>

#include "bench/bench_common.h"
#include "crawler/periodic_crawler.h"
#include "freshness/analytic.h"
#include "simweb/simulated_web.h"
#include "util/table.h"

namespace {

using namespace webevo;

// The paper plots the curves with "a high page change rate to more
// clearly show the trends": lambda such that the shapes are visible.
freshness::CurveSpec FigureSpec() {
  freshness::CurveSpec spec;
  spec.lambda = 2.0;          // changes per month (time unit: months)
  spec.period = 1.0;          // revisit everything monthly
  spec.crawl_window = 0.25;   // batch crawls the first week
  spec.horizon = 3.0;
  spec.samples = 721;
  return spec;
}

double SimulateAverage(double window_days, bool* ok) {
  simweb::WebConfig wc;
  wc.seed = 7;
  wc.sites_per_domain = {6, 4, 2, 2};
  wc.min_site_size = 40;
  wc.max_site_size = 90;
  wc.uniform_change_interval_days = 15.0;  // lambda = 2/month
  wc.uniform_lifespan_days = 1e7;
  simweb::SimulatedWeb web(wc);
  crawler::PeriodicCrawlerConfig config;
  config.collection_capacity = 400;
  config.cycle_days = 30.0;
  config.crawl_window_days = window_days;
  config.shadowing = false;
  crawler::PeriodicCrawler crawler(&web, config);
  *ok = crawler.Bootstrap(0.0).ok() && crawler.RunUntil(120.0).ok();
  return crawler.tracker().TimeAverage(30.0, 120.0);
}

}  // namespace

int main() {
  bench::Banner(
      "Figure 7: freshness evolution, batch-mode vs steady crawler",
      "batch saws between crawls; steady is stable; equal averages at "
      "equal average speed");

  freshness::CurveSpec spec = FigureSpec();
  auto batch = freshness::BatchInPlaceCurve(spec);
  auto steady = freshness::SteadyInPlaceCurve(spec);
  if (!batch.ok() || !steady.ok()) {
    std::printf("curve generation failed\n");
    return 1;
  }

  std::printf("Figure 7(a): batch-mode crawler (crawls the first week of "
              "each month)\n%s\n",
              AsciiChart(batch->time, batch->freshness, 0.0, 1.0).c_str());
  std::printf("Figure 7(b): steady crawler\n%s\n",
              AsciiChart(steady->time, steady->freshness, 0.0, 1.0)
                  .c_str());

  double analytic_batch = freshness::CurveTimeAverage(*batch, 1.0, 3.0);
  double analytic_steady = freshness::CurveTimeAverage(*steady, 1.0, 3.0);
  bool ok_batch = false, ok_steady = false;
  double sim_batch = SimulateAverage(7.0, &ok_batch);
  double sim_steady = SimulateAverage(30.0, &ok_steady);

  TablePrinter table({"crawler", "analytic avg", "simulated avg"});
  table.AddRow({"batch-mode", TablePrinter::Fmt(analytic_batch),
                ok_batch ? TablePrinter::Fmt(sim_batch) : "failed"});
  table.AddRow({"steady", TablePrinter::Fmt(analytic_steady),
                ok_steady ? TablePrinter::Fmt(sim_steady) : "failed"});
  std::printf("%s\n", table.ToString().c_str());
  std::printf("paper's claim: the two time-averages are equal "
              "(difference here: %.4f)\n",
              analytic_batch - analytic_steady);
  return 0;
}
