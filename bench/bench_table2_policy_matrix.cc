// Table 2 — expected freshness of the current collection for the four
// combinations of {steady, batch} x {in-place, shadowing}, under the
// paper's assumptions (all pages change with a 4-month mean interval;
// the crawler revisits everything monthly; the batch crawl takes a
// week). Reported three ways: the paper's numbers, our closed forms,
// and a full crawler simulation on the synthetic web.
//
// Also reproduces the Section 4 sensitivity scenario (monthly-changing
// pages, two-week batch window: 0.63 vs 0.50) and sweeps lambda.

#include <cstdio>

#include "bench/bench_common.h"
#include "crawler/periodic_crawler.h"
#include "freshness/analytic.h"
#include "simweb/simulated_web.h"
#include "util/table.h"

namespace {

using namespace webevo;

double Simulate(uint64_t seed, double interval_days, double cycle,
                double window, bool shadowing) {
  simweb::WebConfig wc;
  wc.seed = seed;
  wc.sites_per_domain = {6, 4, 2, 2};
  wc.min_site_size = 40;
  wc.max_site_size = 90;
  wc.uniform_change_interval_days = interval_days;
  wc.uniform_lifespan_days = 1e7;
  simweb::SimulatedWeb web(wc);
  crawler::PeriodicCrawlerConfig config;
  config.collection_capacity =
      static_cast<std::size_t>(400 * bench::ScaleFromEnv());
  config.cycle_days = cycle;
  config.crawl_window_days = window;
  config.shadowing = shadowing;
  crawler::PeriodicCrawler crawler(&web, config);
  if (!crawler.Bootstrap(0.0).ok() || !crawler.RunUntil(7 * cycle).ok()) {
    return -1.0;
  }
  return crawler.tracker().TimeAverage(2 * cycle, 7 * cycle);
}

}  // namespace

int main() {
  bench::Banner("Table 2: freshness for the four crawler configurations",
                "in-place 0.88 / 0.88; shadowing 0.77 (steady), 0.86 "
                "(batch)");

  const double lambda = 1.0 / 120.0;  // 4-month mean change interval
  const double cycle = 30.0, week = 7.0;

  struct Cell {
    const char* name;
    double paper;
    double analytic;
    double window;
    bool shadowing;
  } cells[] = {
      {"steady, in-place", 0.88,
       freshness::InPlaceFreshness(lambda, cycle), cycle, false},
      {"batch, in-place", 0.88,
       freshness::InPlaceFreshness(lambda, cycle), week, false},
      {"steady, shadowing", 0.77,
       freshness::SteadyShadowingFreshness(lambda, cycle), cycle, true},
      {"batch, shadowing", 0.86,
       freshness::BatchShadowingFreshness(lambda, cycle, week), week,
       true},
  };

  TablePrinter table({"configuration", "paper", "closed form",
                      "simulated"});
  uint64_t seed = 6001;
  for (const Cell& cell : cells) {
    double sim = Simulate(seed++, 1.0 / lambda, cycle, cell.window,
                          cell.shadowing);
    table.AddRow({cell.name, TablePrinter::Fmt(cell.paper, 2),
                  TablePrinter::Fmt(cell.analytic, 3),
                  sim >= 0.0 ? TablePrinter::Fmt(sim, 3) : "failed"});
  }
  std::printf("%s\n", table.ToString().c_str());

  std::printf(
      "Section 4 sensitivity scenario (pages change monthly, batch "
      "crawls 2 weeks):\n");
  TablePrinter sensitivity(
      {"configuration", "paper", "closed form", "simulated"});
  sensitivity.AddRow(
      {"batch, in-place", "0.63",
       TablePrinter::Fmt(freshness::InPlaceFreshness(1.0 / 30.0, 30.0),
                         3),
       TablePrinter::Fmt(Simulate(6101, 30.0, 30.0, 15.0, false), 3)});
  sensitivity.AddRow(
      {"batch, shadowing", "0.50",
       TablePrinter::Fmt(
           freshness::BatchShadowingFreshness(1.0 / 30.0, 30.0, 15.0), 3),
       TablePrinter::Fmt(Simulate(6102, 30.0, 30.0, 15.0, true), 3)});
  std::printf("%s\n", sensitivity.ToString().c_str());

  std::printf("ablation: shadowing penalty vs page change rate "
              "(cycle 30d, window 7d)\n");
  TablePrinter sweep({"mean change interval", "in-place", "steady+shadow",
                      "batch+shadow"});
  for (double interval : {360.0, 120.0, 60.0, 30.0, 15.0}) {
    double l = 1.0 / interval;
    sweep.AddRow(
        {TablePrinter::Fmt(interval, 0) + "d",
         TablePrinter::Fmt(freshness::InPlaceFreshness(l, cycle), 3),
         TablePrinter::Fmt(freshness::SteadyShadowingFreshness(l, cycle),
                           3),
         TablePrinter::Fmt(
             freshness::BatchShadowingFreshness(l, cycle, week), 3)});
  }
  std::printf("%s", sweep.ToString().c_str());
  return 0;
}
