// Figure 2 — fraction of pages with a given average change interval,
// (a) over all domains and (b) per domain, measured by re-running the
// paper's daily page-window procedure on the calibrated synthetic web.
//
// Also quantifies the Figure 1(a) estimation bias: daily sampling
// cannot see intervals below one day, so the estimate floors at 1 day.

#include <cmath>
#include <cstdio>

#include "bench/bench_common.h"
#include "experiment/analyzers.h"
#include "util/stats.h"
#include "util/table.h"

int main() {
  using namespace webevo;
  using namespace webevo::experiment;

  bench::Banner(
      "Figure 2: average change interval of pages",
      ">20% change every visit; com >40% daily, edu/gov >50% static "
      "over 4 months");

  bench::Study study = bench::RunStudy();
  ChangeIntervalResult result =
      AnalyzeChangeIntervals(study.experiment->table());

  // Paper's approximate bar heights, read off Figure 2(a).
  const double paper_overall[5] = {0.23, 0.15, 0.16, 0.16, 0.30};
  TablePrinter fig2a({"interval", "paper (approx)", "measured"});
  for (std::size_t b = 0; b < result.overall.num_buckets(); ++b) {
    fig2a.AddRow({result.overall.bucket_label(b),
                  TablePrinter::Percent(paper_overall[b]),
                  TablePrinter::Percent(result.overall.fraction(b))});
  }
  std::printf("Figure 2(a), all domains (%zu pages with >=2 sightings):"
              "\n%s\n",
              result.pages_analyzed, fig2a.ToString().c_str());
  std::printf("%s\n", result.overall.ToString().c_str());

  TablePrinter fig2b({"interval", "com", "edu", "netorg", "gov"});
  for (std::size_t b = 0; b < result.overall.num_buckets(); ++b) {
    std::vector<std::string> row = {result.overall.bucket_label(b)};
    for (simweb::Domain d : simweb::kAllDomains) {
      row.push_back(TablePrinter::Percent(
          result.by_domain[static_cast<int>(d)].fraction(b)));
    }
    fig2b.AddRow(row);
  }
  std::printf("Figure 2(b), per domain:\n%s\n", fig2b.ToString().c_str());

  // Figure 1(a) bias: compare estimated vs true intervals for the
  // sub-daily changers using the oracle.
  RunningStat true_interval, est_interval;
  study.experiment->table().ForEach(
      [&](const simweb::Url& url, const PageStats& ps) {
        (void)url;
        if (ps.sightings < 2 || ps.changes == 0) return;
        double truth = 1.0 / study.web->OracleChangeRate(ps.page);
        if (truth > 1.0) return;  // only the sub-daily changers
        true_interval.Add(truth);
        est_interval.Add(ps.EstimatedChangeIntervalDays());
      });
  if (true_interval.count() > 0) {
    std::printf(
        "Figure 1(a) granularity bias on sub-daily pages (n=%lld):\n"
        "  true mean interval:      %.3f days\n"
        "  estimated mean interval: %.3f days (floored at the 1-day "
        "visit granularity)\n",
        static_cast<long long>(true_interval.count()),
        true_interval.mean(), est_interval.mean());
  }
  return 0;
}
