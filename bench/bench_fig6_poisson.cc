// Figure 6 — are page changes Poisson? For pages whose measured average
// change interval is ~10 days (a) and ~20 days (b), histogram the
// intervals between successive detected changes and compare with the
// exponential prediction of Theorem 1 on a log scale.

#include <cmath>
#include <cstdio>

#include "bench/bench_common.h"
#include "experiment/analyzers.h"
#include "util/table.h"

namespace {

void ReportTarget(const webevo::experiment::PageStatsTable& table,
                  double target_days) {
  using namespace webevo;
  auto result = experiment::AnalyzePoisson(table, target_days, 0.25);
  if (!result.ok()) {
    std::printf("no pages near %.0f days: %s\n\n", target_days,
                result.status().ToString().c_str());
    return;
  }
  std::printf(
      "pages with ~%.0f-day average interval: %zu pages, %zu intervals\n",
      target_days, result->pages_selected, result->intervals_collected);

  // Log-scale chart of observed fraction vs Poisson prediction — the
  // straight line of Figure 6.
  std::vector<double> log_obs, log_pred, days;
  for (std::size_t i = 0; i < result->interval_days.size(); ++i) {
    if (result->fraction[i] <= 0.0) continue;
    days.push_back(result->interval_days[i]);
    log_obs.push_back(std::log10(result->fraction[i]));
    log_pred.push_back(std::log10(result->predicted[i]));
  }
  std::printf("log10(fraction) vs interval: '*' observed, 'o' Poisson "
              "prediction\n%s\n",
              AsciiChart2(days, log_obs, log_pred, -4.0, 0.0).c_str());
  std::printf(
      "exponential fit: rate %.4f/day (Poisson predicts %.4f), "
      "R^2 = %.3f\n\n",
      result->fit.rate, 1.0 / target_days, result->fit.r2);
}

}  // namespace

int main() {
  using namespace webevo;

  bench::Banner(
      "Figure 6: change intervals vs the Poisson model",
      "interval distributions are exponential; 'a Poisson process "
      "predicts the observed data very well'");

  // A longer campaign gives Figure 6 more intervals to histogram.
  bench::Study study = bench::RunStudy(128, 300, 0.2);
  ReportTarget(study.experiment->table(), 10.0);  // Figure 6(a)
  ReportTarget(study.experiment->table(), 20.0);  // Figure 6(b)
  return 0;
}
