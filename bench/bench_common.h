#ifndef WEBEVO_BENCH_BENCH_COMMON_H_
#define WEBEVO_BENCH_BENCH_COMMON_H_

// Shared plumbing for the table/figure reproduction benches.
//
// Every bench binary regenerates one table or figure of Cho &
// Garcia-Molina, "The Evolution of the Web and Implications for an
// Incremental Crawler" (VLDB 2000), printing the paper's reported
// numbers next to the measured ones. Scale with the WEBEVO_SCALE env
// var (default 1.0 = the bench's own default workload, which is already
// a scaled-down-but-faithful version of the paper's 720k-page study).

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "experiment/monitoring_experiment.h"
#include "simweb/simulated_web.h"
#include "simweb/web_config.h"

namespace webevo::bench {

/// Workload multiplier from the WEBEVO_SCALE environment variable.
inline double ScaleFromEnv() {
  const char* raw = std::getenv("WEBEVO_SCALE");
  if (raw == nullptr) return 1.0;
  double scale = std::atof(raw);
  return scale > 0.0 ? scale : 1.0;
}

/// The study population used by the measurement benches: the paper's
/// 270-site domain mix scaled to `base_fraction * ScaleFromEnv()` of
/// its size, with calibrated change/lifespan profiles.
inline simweb::WebConfig StudyWeb(double base_fraction,
                                  uint64_t seed = 19990217) {
  simweb::WebConfig config =
      simweb::WebConfig().Scaled(base_fraction * ScaleFromEnv());
  config.seed = seed;
  // Keep sites within the monitoring window (the paper's 3,000-page
  // window also covered most of its sites): pages then leave the
  // window only when they die, not from BFS reshuffling at the window
  // edge, which would otherwise dominate the lifespan statistics at
  // this reduced scale.
  config.max_site_size = 250;
  return config;
}

/// A completed monitoring campaign (web + experiment kept alive
/// together), shared by the Figure 2/4/5/6 benches.
struct Study {
  std::unique_ptr<simweb::SimulatedWeb> web;
  std::unique_ptr<experiment::MonitoringExperiment> experiment;
  int days = 0;
};

/// Runs the paper's daily page-window campaign: `days` days over the
/// calibrated study population (Section 2's procedure). The default
/// parameters monitor ~40 sites with a 300-page window for 128 days —
/// a ~1/7-scale replica of the 270-site, 3000-page-window original.
inline Study RunStudy(int days = 128, std::size_t window = 300,
                      double base_fraction = 0.15) {
  Study study;
  study.days = days;
  study.web =
      std::make_unique<simweb::SimulatedWeb>(StudyWeb(base_fraction));
  experiment::MonitoringConfig config;
  config.num_days = days;
  config.window_size = window;
  study.experiment = std::make_unique<experiment::MonitoringExperiment>(
      study.web.get(), config);
  std::printf("running the campaign: %u sites, %zu-page windows, %d "
              "daily visits...\n",
              study.web->num_sites(), window, days);
  Status st = study.experiment->Run();
  if (!st.ok()) {
    std::printf("campaign failed: %s\n", st.ToString().c_str());
    std::exit(1);
  }
  std::printf("campaign done: %llu fetches, %zu pages sighted\n\n",
              static_cast<unsigned long long>(
                  study.experiment->total_fetches()),
              study.experiment->table().num_pages());
  return study;
}

/// Prints the standard bench banner.
inline void Banner(const char* experiment_id, const char* paper_claim) {
  std::printf("================================================\n");
  std::printf("%s\n", experiment_id);
  std::printf("paper: %s\n", paper_claim);
  std::printf("================================================\n\n");
}

}  // namespace webevo::bench

#endif  // WEBEVO_BENCH_BENCH_COMMON_H_
