// Figure 4 — visible lifespan of pages, (a) over all domains under the
// two censoring corrections (Method 1: observed span s; Method 2: 2s
// for pages touching either end of the experiment), (b) per domain.

#include <cstdio>

#include "bench/bench_common.h"
#include "experiment/analyzers.h"
#include "util/table.h"

int main() {
  using namespace webevo;
  using namespace webevo::experiment;

  bench::Banner(
      "Figure 4: visible lifespan of pages",
      ">70% of pages visible beyond 1 month; edu/gov >50% beyond 4 "
      "months; com shortest-lived");

  bench::Study study = bench::RunStudy();
  LifespanResult result =
      AnalyzeLifespans(study.experiment->table(), study.days);

  // Paper's approximate Figure 4(a) bars.
  const double paper_m1[4] = {0.07, 0.19, 0.31, 0.43};
  const double paper_m2[4] = {0.06, 0.16, 0.33, 0.45};
  TablePrinter fig4a({"lifespan", "paper M1", "measured M1", "paper M2",
                      "measured M2"});
  for (std::size_t b = 0; b < result.method1.num_buckets(); ++b) {
    fig4a.AddRow({result.method1.bucket_label(b),
                  TablePrinter::Percent(paper_m1[b]),
                  TablePrinter::Percent(result.method1.fraction(b)),
                  TablePrinter::Percent(paper_m2[b]),
                  TablePrinter::Percent(result.method2.fraction(b))});
  }
  std::printf("Figure 4(a), all domains (%zu pages):\n%s\n",
              result.pages_analyzed, fig4a.ToString().c_str());

  TablePrinter fig4b({"lifespan (M1)", "com", "edu", "netorg", "gov"});
  for (std::size_t b = 0; b < result.method1.num_buckets(); ++b) {
    std::vector<std::string> row = {result.method1.bucket_label(b)};
    for (simweb::Domain d : simweb::kAllDomains) {
      row.push_back(TablePrinter::Percent(
          result.method1_by_domain[static_cast<int>(d)].fraction(b)));
    }
    fig4b.AddRow(row);
  }
  std::printf("Figure 4(b), per domain (Method 1):\n%s\n",
              fig4b.ToString().c_str());

  double beyond_month =
      result.method1.fraction(2) + result.method1.fraction(3);
  std::printf("visible beyond one month (paper: >70%%): %s\n",
              TablePrinter::Percent(beyond_month).c_str());
  for (simweb::Domain d : {simweb::Domain::kEdu, simweb::Domain::kGov}) {
    std::printf(
        "%s beyond four months (paper: >50%%): %s\n",
        simweb::DomainName(d).data(),
        TablePrinter::Percent(
            result.method1_by_domain[static_cast<int>(d)].fraction(3))
            .c_str());
  }
  return 0;
}
