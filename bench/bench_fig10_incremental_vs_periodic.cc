// Figure 10 / Section 5 — the two "reasonable" crawler designs head to
// head on the same evolving web: the incremental crawler (steady,
// in-place, variable frequency, with RankingModule refinement) against
// the periodic crawler (batch, shadowing, fixed frequency). Reports the
// axes of Figure 10: freshness, peak network/server load, and how
// quickly new pages are brought into the collection.

#include <cstdio>

#include "bench/bench_common.h"
#include "crawler/incremental_crawler.h"
#include "crawler/periodic_crawler.h"
#include "simweb/simulated_web.h"
#include "util/table.h"

namespace {

using namespace webevo;

struct Outcome {
  double freshness = 0.0;
  double peak_rate = 0.0;
  double avg_rate = 0.0;
  double new_page_latency = -1.0;
  uint64_t crawls = 0;
  bool ok = false;
};

constexpr double kHorizon = 150.0;
constexpr double kCycle = 30.0;

simweb::WebConfig SharedWeb() {
  simweb::WebConfig wc = bench::StudyWeb(0.12, 2000);
  return wc;
}

Outcome RunIncremental(std::size_t capacity) {
  simweb::SimulatedWeb web(SharedWeb());
  crawler::IncrementalCrawlerConfig config;
  config.collection_capacity = capacity;
  config.crawl_rate_pages_per_day = static_cast<double>(capacity) / kCycle;
  crawler::IncrementalCrawler crawler(&web, config);
  Outcome out;
  out.ok = crawler.Bootstrap(0.0).ok() && crawler.RunUntil(kHorizon).ok();
  if (!out.ok) return out;
  out.freshness = crawler.tracker().TimeAverage(2 * kCycle, kHorizon);
  out.peak_rate = crawler.crawl_module().PeakDailyRate();
  out.avg_rate = crawler.crawl_module().AverageDailyRate();
  out.crawls = crawler.stats().crawls;
  if (crawler.stats().new_page_latency_days.count() > 0) {
    out.new_page_latency = crawler.stats().new_page_latency_days.mean();
  }
  return out;
}

Outcome RunPeriodic(std::size_t capacity) {
  simweb::SimulatedWeb web(SharedWeb());
  crawler::PeriodicCrawlerConfig config;
  config.collection_capacity = capacity;
  config.cycle_days = kCycle;
  config.crawl_window_days = 7.0;
  config.shadowing = true;
  crawler::PeriodicCrawler crawler(&web, config);
  Outcome out;
  out.ok = crawler.Bootstrap(0.0).ok() && crawler.RunUntil(kHorizon).ok();
  if (!out.ok) return out;
  out.freshness = crawler.tracker().TimeAverage(2 * kCycle, kHorizon);
  out.peak_rate = crawler.crawl_module().PeakDailyRate();
  out.avg_rate = crawler.crawl_module().AverageDailyRate();
  out.crawls = crawler.stats().crawls;
  // A periodic crawler indexes a page created right after a crawl only
  // in the *next* cycle: expected latency ~ half a cycle plus the wait
  // for the swap — report the structural bound.
  out.new_page_latency = kCycle / 2.0 + 7.0;
  return out;
}

}  // namespace

int main() {
  bench::Banner(
      "Figure 10 / Section 5: incremental vs periodic crawler",
      "incremental: high freshness, low peak load, timely new pages; "
      "periodic: simpler, shielded collection");

  const auto capacity =
      static_cast<std::size_t>(2000 * bench::ScaleFromEnv());
  std::printf("collection: %zu pages; both crawlers sweep once per %.0f "
              "days; %.0f simulated days\n\n",
              capacity, kCycle, kHorizon);

  Outcome inc = RunIncremental(capacity);
  Outcome per = RunPeriodic(capacity);
  if (!inc.ok || !per.ok) {
    std::printf("simulation failed\n");
    return 1;
  }

  TablePrinter table({"metric", "incremental (steady, in-place, "
                                "variable freq)",
                      "periodic (batch, shadowing, fixed freq)"});
  table.AddRow({"freshness (steady state)",
                TablePrinter::Fmt(inc.freshness),
                TablePrinter::Fmt(per.freshness)});
  table.AddRow({"peak load (pages/day)",
                TablePrinter::Fmt(inc.peak_rate, 0),
                TablePrinter::Fmt(per.peak_rate, 0)});
  table.AddRow({"average load (pages/day)",
                TablePrinter::Fmt(inc.avg_rate, 0),
                TablePrinter::Fmt(per.avg_rate, 0)});
  table.AddRow({"new-page latency (days)",
                TablePrinter::Fmt(inc.new_page_latency, 1),
                TablePrinter::Fmt(per.new_page_latency, 1) +
                    " (structural bound)"});
  table.AddRow({"total fetches",
                TablePrinter::Fmt(static_cast<int64_t>(inc.crawls)),
                TablePrinter::Fmt(static_cast<int64_t>(per.crawls))});
  std::printf("%s\n", table.ToString().c_str());

  std::printf(
      "expected shape (paper): incremental wins freshness by exploiting\n"
      "variable revisit frequency and immediate in-place updates, at a\n"
      "peak load ~window/cycle = 4x lower; the periodic crawler's only\n"
      "wins are implementation simplicity and collection availability.\n");
  return 0;
}
