// Incremental-checkpoint bench: the O(dirty) contract, measured. At a
// steady-state, low-dirty workload (a fraction of the collection is
// touched between checkpoints), an incremental checkpoint — one sealed
// delta segment appended to the write-ahead log — must cost a small
// fraction of a full SaveCrawlerToFile in both bytes and wall-clock,
// and restoring base + deltas must be byte-identical to restoring the
// full checkpoint taken at the same batch.
//
// Both sides are measured without the web section (include_web=false,
// the same-process checkpoint mode): the freshness oracle's lazy
// change-process sampling dirties nearly every *web* site between
// samples regardless of crawl traffic, so the web delta tracks oracle
// traffic, not checkpoint-relevant crawl work — see docs/STORAGE.md.
//
// Usage:
//   bench_checkpoint_incremental [--json <path>]
// Env:
//   WEBEVO_SCALE               web size multiplier      (default 1.0,
//                              over a 0.15-scale base web)
//   WEBEVO_WARMUP_DAYS         days before the base     (default 8)
//   WEBEVO_INTERVALS           checkpoints measured     (default 8)
//   WEBEVO_GAP_DAYS            days between checkpoints (default 0.25)
//   WEBEVO_REQUIRE_INC_RATIO   max incremental/full for bytes and
//                              wall-clock               (default 0.2)
//
// Exits non-zero if the mean byte or wall-clock ratio exceeds the
// bound, or if the base+deltas restore diverges from the full restore.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "crawler/incremental_crawler.h"
#include "crawler/snapshot.h"
#include "simweb/simulated_web.h"
#include "simweb/web_config.h"
#include "storage/delta_log.h"

namespace {

using namespace webevo;
using Clock = std::chrono::steady_clock;

double EnvDouble(const char* name, double fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return fallback;
  const double v = std::atof(raw);
  return v > 0.0 ? v : fallback;
}

double Ms(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

std::size_t FileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return 0;
  return static_cast<std::size_t>(in.tellg());
}

std::string CheckpointBytesOf(const crawler::IncrementalCrawler& c,
                              const crawler::CrawlerCheckpointOptions& o) {
  std::ostringstream out;
  Status st = SaveCrawler(c, out, o);
  if (!st.ok()) {
    std::fprintf(stderr, "FAIL: %s\n", st.ToString().c_str());
    std::exit(1);
  }
  return out.str();
}

struct CkptRow {
  double day = 0.0;
  uint64_t fetches = 0;
  std::size_t full_bytes = 0;
  std::size_t inc_bytes = 0;
  double full_ms = 0.0;
  double inc_ms = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--json requires a path\n");
        return 2;
      }
      json_path = argv[++i];
    }
  }

  const double scale = EnvDouble("WEBEVO_SCALE", 1.0);
  const double warmup = EnvDouble("WEBEVO_WARMUP_DAYS", 8.0);
  const int intervals =
      static_cast<int>(EnvDouble("WEBEVO_INTERVALS", 8.0));
  const double gap = EnvDouble("WEBEVO_GAP_DAYS", 0.25);
  const double bound = EnvDouble("WEBEVO_REQUIRE_INC_RATIO", 0.2);

  simweb::WebConfig web_config = simweb::WebConfig().Scaled(0.15 * scale);
  web_config.seed = 19990217;
  simweb::SimulatedWeb web(web_config);

  crawler::IncrementalCrawlerConfig config;
  config.collection_capacity = 2000;
  config.crawl_rate_pages_per_day = 300.0;
  config.crawl_parallelism = 4;
  config.checkpoint_incremental = true;  // arms delta tracking
  crawler::IncrementalCrawler crawler(&web, config);

  crawler::CrawlerCheckpointOptions options;
  options.include_web = false;

  const std::string inc_path = "bench_inc_ckpt.bin";
  const std::string full_path = "bench_full_ckpt.bin";

  Status st = crawler.Bootstrap(0.0);
  if (!st.ok()) {
    std::fprintf(stderr, "FAIL: %s\n", st.ToString().c_str());
    return 1;
  }
  st = crawler.RunUntil(warmup);
  if (!st.ok()) {
    std::fprintf(stderr, "FAIL: %s\n", st.ToString().c_str());
    return 1;
  }

  // The base image (rebase: full write + delta-log truncate).
  st = crawler::CheckpointIncremental(&crawler, inc_path, options);
  if (!st.ok()) {
    std::fprintf(stderr, "FAIL: %s\n", st.ToString().c_str());
    return 1;
  }
  const std::size_t base_bytes = FileBytes(inc_path);

  std::vector<CkptRow> rows;
  uint64_t last_crawls = crawler.stats().crawls;
  std::size_t last_log_bytes = FileBytes(inc_path + ".deltas");
  for (int i = 1; i <= intervals; ++i) {
    const double day = warmup + gap * i;
    st = crawler.RunUntil(day);
    if (!st.ok()) {
      std::fprintf(stderr, "FAIL: %s\n", st.ToString().c_str());
      return 1;
    }
    CkptRow row;
    row.day = day;
    row.fetches = crawler.stats().crawls - last_crawls;
    last_crawls = crawler.stats().crawls;

    Clock::time_point t0 = Clock::now();
    st = SaveCrawlerToFile(crawler, full_path, options);
    Clock::time_point t1 = Clock::now();
    if (!st.ok()) {
      std::fprintf(stderr, "FAIL: %s\n", st.ToString().c_str());
      return 1;
    }
    row.full_ms = Ms(t0, t1);
    row.full_bytes = FileBytes(full_path);

    t0 = Clock::now();
    st = crawler::CheckpointIncremental(&crawler, inc_path, options);
    t1 = Clock::now();
    if (!st.ok()) {
      std::fprintf(stderr, "FAIL: %s\n", st.ToString().c_str());
      return 1;
    }
    row.inc_ms = Ms(t0, t1);
    const std::size_t log_bytes = FileBytes(inc_path + ".deltas");
    row.inc_bytes = log_bytes - last_log_bytes;
    last_log_bytes = log_bytes;
    rows.push_back(row);
  }

  // Correctness gate: base + deltas restores byte-identically to the
  // full checkpoint written at the same (final) batch.
  crawler::IncrementalCrawler from_deltas(&web, config);
  st = crawler::LoadCrawlerWithDeltasFromFile(inc_path, &from_deltas);
  if (!st.ok()) {
    std::fprintf(stderr, "FAIL: delta restore: %s\n",
                 st.ToString().c_str());
    return 1;
  }
  crawler::IncrementalCrawler from_full(&web, config);
  st = crawler::LoadCrawlerFromFile(full_path, &from_full);
  if (!st.ok()) {
    std::fprintf(stderr, "FAIL: full restore: %s\n",
                 st.ToString().c_str());
    return 1;
  }
  const bool restores_match = CheckpointBytesOf(from_deltas, options) ==
                              CheckpointBytesOf(from_full, options);

  std::printf(
      "incremental checkpoints: capacity=%zu rate=%.0f/day gap=%.2fd "
      "base=%zuB\n",
      config.collection_capacity, config.crawl_rate_pages_per_day, gap,
      base_bytes);
  std::printf("%8s %8s %12s %12s %7s %9s %9s %7s %7s\n", "day",
              "fetches", "full_B", "inc_B", "B_rto", "full_ms",
              "inc_ms", "ms_rto", "dirty%");
  double sum_full_b = 0.0, sum_inc_b = 0.0;
  double sum_full_ms = 0.0, sum_inc_ms = 0.0;
  for (const CkptRow& r : rows) {
    const double dirty =
        100.0 * static_cast<double>(r.fetches) /
        static_cast<double>(config.collection_capacity);
    std::printf("%8.2f %8llu %12zu %12zu %7.3f %9.2f %9.2f %7.3f %7.2f\n",
                r.day, static_cast<unsigned long long>(r.fetches),
                r.full_bytes, r.inc_bytes,
                static_cast<double>(r.inc_bytes) /
                    static_cast<double>(r.full_bytes),
                r.full_ms, r.inc_ms, r.inc_ms / r.full_ms, dirty);
    sum_full_b += static_cast<double>(r.full_bytes);
    sum_inc_b += static_cast<double>(r.inc_bytes);
    sum_full_ms += r.full_ms;
    sum_inc_ms += r.inc_ms;
  }
  const double byte_ratio = sum_inc_b / sum_full_b;
  const double time_ratio = sum_inc_ms / sum_full_ms;
  std::printf(
      "mean: bytes %.1f%% of full, wall-clock %.1f%% of full "
      "(bound %.0f%%); restores %s\n",
      100.0 * byte_ratio, 100.0 * time_ratio, 100.0 * bound,
      restores_match ? "byte-identical" : "DIVERGED");

  if (!json_path.empty()) {
    std::ostringstream js;
    js.precision(17);
    js << "{\n  \"base_bytes\": " << base_bytes
       << ",\n  \"byte_ratio\": " << byte_ratio
       << ",\n  \"time_ratio\": " << time_ratio
       << ",\n  \"bound\": " << bound << ",\n  \"restores_match\": "
       << (restores_match ? "true" : "false") << ",\n  \"intervals\": [";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const CkptRow& r = rows[i];
      js << (i == 0 ? "" : ",") << "\n    {\"day\": " << r.day
         << ", \"fetches\": " << r.fetches
         << ", \"full_bytes\": " << r.full_bytes
         << ", \"inc_bytes\": " << r.inc_bytes
         << ", \"full_ms\": " << r.full_ms
         << ", \"inc_ms\": " << r.inc_ms << "}";
    }
    js << "\n  ]\n}\n";
    std::ofstream out(json_path);
    out << js.str();
    if (!out.good()) {
      std::fprintf(stderr, "FAIL: cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("json: wrote %s\n", json_path.c_str());
  }

  std::remove(inc_path.c_str());
  std::remove((inc_path + ".deltas").c_str());
  std::remove(full_path.c_str());

  bool ok = restores_match;
  if (byte_ratio >= bound) {
    std::fprintf(stderr, "FAIL: byte ratio %.3f >= bound %.3f\n",
                 byte_ratio, bound);
    ok = false;
  }
  if (time_ratio >= bound) {
    std::fprintf(stderr, "FAIL: wall-clock ratio %.3f >= bound %.3f\n",
                 time_ratio, bound);
    ok = false;
  }
  if (!restores_match) {
    std::fprintf(stderr,
                 "FAIL: base+deltas restore != full restore\n");
  }
  return ok ? 0 : 1;
}
