// Ablation: change-frequency estimator accuracy vs. visit cadence.
//
// Systematises the methodology concerns of Figures 1 and 3: how well
// can each estimator (naive / EP / EB / ratio / EL) recover a page's
// true change rate when the visit interval ranges from much shorter to
// much longer than the change interval? This is the statistic the
// UpdateModule's scheduling quality rests on (Section 5.3).

#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_common.h"
#include "estimator/change_estimator.h"
#include "estimator/last_modified_estimator.h"
#include "util/random.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using namespace webevo;
using namespace webevo::estimator;

// Feeds one simulated Poisson page (with Last-Modified support) to an
// estimator; returns the final rate estimate.
double SimulateOnePage(ChangeEstimator& est, double rate, double visit_gap,
                       int visits, Rng& rng) {
  auto* el = dynamic_cast<LastModifiedEstimator*>(&est);
  for (int v = 0; v < visits; ++v) {
    bool changed = rng.NextDouble() < 1.0 - std::exp(-rate * visit_gap);
    if (el != nullptr) {
      if (changed) {
        // Quiet tail | >=1 change in gap: truncated exponential.
        double tail;
        do {
          tail = rng.Exponential(rate);
        } while (tail >= visit_gap);
        el->RecordObservationWithTimestamp(visit_gap, true, tail);
      } else {
        el->RecordObservationWithTimestamp(visit_gap, false, visit_gap);
      }
    } else {
      est.RecordObservation(visit_gap, changed);
    }
  }
  return est.EstimatedRate();
}

// Median relative error of an estimator across many pages.
double MedianRelativeError(EstimatorKind kind, double rate,
                           double visit_gap, int visits, int pages,
                           Rng& rng) {
  std::vector<double> errors;
  errors.reserve(static_cast<std::size_t>(pages));
  for (int p = 0; p < pages; ++p) {
    auto est = MakeEstimator(kind);
    double estimate = SimulateOnePage(*est, rate, visit_gap, visits, rng);
    errors.push_back(std::abs(estimate - rate) / rate);
  }
  std::nth_element(errors.begin(),
                   errors.begin() + static_cast<long>(errors.size() / 2),
                   errors.end());
  return errors[errors.size() / 2];
}

}  // namespace

int main() {
  bench::Banner(
      "Ablation: estimator accuracy vs visit cadence (Figures 1/3 "
      "methodology, systematised)",
      "checksum estimators are blind above the visit rate; "
      "Last-Modified (EL) is not");

  Rng rng(7);
  const int pages = 200, visits = 120;
  const double rate = 0.1;  // one change every 10 days

  const EstimatorKind kinds[] = {
      EstimatorKind::kNaive, EstimatorKind::kPoissonCi,
      EstimatorKind::kBayesian, EstimatorKind::kRatio,
      EstimatorKind::kLastModified};

  std::printf("median relative error of the rate estimate; page changes "
              "every %.0f days,\n%d visits per page, %d pages per cell\n\n",
              1.0 / rate, visits, pages);
  TablePrinter table({"visit gap", "regime", "naive", "EP", "EB", "ratio",
                      "EL"});
  struct Row {
    double gap;
    const char* regime;
  } rows[] = {{1.0, "gap << interval"},
              {5.0, "gap < interval"},
              {10.0, "gap = interval"},
              {30.0, "gap > interval"},
              {80.0, "gap >> interval"}};
  for (const Row& row : rows) {
    std::vector<std::string> cells = {
        TablePrinter::Fmt(row.gap, 0) + "d", row.regime};
    for (EstimatorKind kind : kinds) {
      cells.push_back(TablePrinter::Percent(
          MedianRelativeError(kind, rate, row.gap, visits, pages, rng)));
    }
    table.AddRow(cells);
  }
  std::printf("%s\n", table.ToString().c_str());

  // The Figure 1(a) cliff: sweep the true rate at a fixed daily cadence.
  std::printf("estimated/true rate at daily visits (the granularity "
              "cliff of Figure 1a):\n");
  TablePrinter cliff({"true interval", "naive", "EP", "EB", "ratio", "EL"});
  for (double interval : {20.0, 5.0, 2.0, 1.0, 0.5, 0.1}) {
    double true_rate = 1.0 / interval;
    std::vector<std::string> cells = {TablePrinter::Fmt(interval, 1) +
                                      "d"};
    for (EstimatorKind kind : kinds) {
      RunningStat ratio_stat;
      for (int p = 0; p < 60; ++p) {
        auto est = MakeEstimator(kind);
        double estimate =
            SimulateOnePage(*est, true_rate, 1.0, visits, rng);
        ratio_stat.Add(estimate / true_rate);
      }
      cells.push_back(TablePrinter::Fmt(ratio_stat.mean(), 2));
    }
    cliff.AddRow(cells);
  }
  std::printf("%s\n", cliff.ToString().c_str());
  std::printf(
      "reading: 1.00 = unbiased. Checksum estimators collapse toward\n"
      "gap-limited values once pages change faster than visits; EL\n"
      "stays calibrated — the case for exploiting Last-Modified.\n");
  return 0;
}
