// Table 1 — number of monitored sites per domain.
//
// Pipeline (Section 2.2): build a site universe, rank sites with the
// site-level hypergraph PageRank (damping 0.9), take the top 400 as
// candidates, keep each with the paper's 270/400 permission rate.

#include <cstdio>

#include "bench/bench_common.h"
#include "experiment/site_selector.h"
#include "simweb/simulated_web.h"
#include "util/table.h"

int main() {
  using namespace webevo;
  using namespace webevo::experiment;

  bench::Banner("Table 1: sites per domain among the monitored sites",
                "com 132, edu 78, netorg 30, gov 30 (270 total)");

  SiteSelectorConfig config;
  config.universe_sites =
      static_cast<int>(2000 * bench::ScaleFromEnv());
  simweb::SimulatedWeb universe(MakeUniverseConfig(config));
  std::printf("universe: %u sites; ranking with site PageRank d=%.1f\n\n",
              universe.num_sites(), config.damping);

  auto result = SelectSites(universe, config);
  if (!result.ok()) {
    std::printf("selection failed: %s\n",
                result.status().ToString().c_str());
    return 1;
  }

  const int paper[simweb::kNumDomains] = {132, 78, 30, 30};
  TablePrinter table({"domain", "paper (of 270)", "measured (of " +
                                                      TablePrinter::Fmt(
                                                          static_cast<
                                                              int64_t>(
                                                              result
                                                                  ->selected
                                                                  .size()))});
  for (simweb::Domain d : simweb::kAllDomains) {
    int i = static_cast<int>(d);
    table.AddRow({std::string(simweb::DomainName(d)),
                  TablePrinter::Fmt(static_cast<int64_t>(paper[i])),
                  TablePrinter::Fmt(static_cast<int64_t>(
                      result->selected_by_domain[i]))});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "candidates contacted: %zu, permissions granted: %zu (paper: 400 "
      "-> 270)\n",
      result->candidates.size(), result->selected.size());
  return 0;
}
