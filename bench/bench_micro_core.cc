// Micro-benchmarks (google-benchmark) for the hot data structures and
// kernels: CollUrls scheduling, page fetch + lazy Poisson advance,
// checksum, PageRank iteration, estimator updates, and the optimizer.
// These back the paper's throughput argument: the UpdateModule's fast
// path must sustain tens of pages per second independent of collection
// size (Section 5.3's "40 pages/second" discussion).

#include <benchmark/benchmark.h>

#include "crawler/coll_urls.h"
#include "crawler/update_module.h"
#include "estimator/bayesian_estimator.h"
#include "estimator/ratio_estimator.h"
#include "freshness/revisit_optimizer.h"
#include "graph/link_graph.h"
#include "graph/pagerank.h"
#include "simweb/simulated_web.h"
#include "util/hash.h"
#include "util/random.h"

namespace {

using namespace webevo;

void BM_ChecksumPage(benchmark::State& state) {
  std::string body(static_cast<std::size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(ChecksumOf(body));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_ChecksumPage)->Arg(256)->Arg(4096)->Arg(65536);

void BM_CollUrlsScheduleAndPop(benchmark::State& state) {
  const auto n = static_cast<uint32_t>(state.range(0));
  crawler::CollUrls queue;
  Rng rng(1);
  for (uint32_t i = 0; i < n; ++i) {
    queue.Schedule(simweb::Url{0, i, 0}, rng.NextDouble() * 30.0);
  }
  double t = 31.0;
  for (auto _ : state) {
    auto item = queue.Pop();
    benchmark::DoNotOptimize(item);
    queue.Schedule(item->url, t);
    t += 1e-4;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_CollUrlsScheduleAndPop)->Arg(1000)->Arg(100000);

void BM_SimWebFetch(benchmark::State& state) {
  simweb::WebConfig config;
  config.seed = 3;
  config.sites_per_domain = {8, 5, 3, 3};
  simweb::SimulatedWeb web(config);
  Rng rng(4);
  double t = 0.0;
  for (auto _ : state) {
    uint32_t site = static_cast<uint32_t>(rng.NextBounded(web.num_sites()));
    uint32_t slot = static_cast<uint32_t>(
        rng.NextBounded(web.site_size(site)));
    simweb::Url url = web.OracleCurrentUrl(site, slot, t);
    benchmark::DoNotOptimize(web.Fetch(url, t));
    t += 1e-5;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_SimWebFetch);

void BM_UpdateModuleOnCrawled(benchmark::State& state) {
  crawler::UpdateModuleConfig config;
  config.policy = crawler::RevisitPolicy::kOptimal;
  crawler::UpdateModule module(config);
  const auto n = static_cast<uint32_t>(state.range(0));
  for (uint32_t i = 0; i < n; ++i) {
    module.OnCrawled(simweb::Url{0, i, 0}, 0.0, false, true);
  }
  module.Rebalance();
  Rng rng(5);
  double t = 1.0;
  for (auto _ : state) {
    uint32_t i = static_cast<uint32_t>(rng.NextBounded(n));
    benchmark::DoNotOptimize(
        module.OnCrawled(simweb::Url{0, i, 0}, t, rng.Bernoulli(0.3),
                         false));
    t += 1e-4;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_UpdateModuleOnCrawled)->Arg(1000)->Arg(100000);

void BM_EstimatorUpdate_Ratio(benchmark::State& state) {
  estimator::RatioEstimator est;
  Rng rng(6);
  for (auto _ : state) {
    est.RecordObservation(1.0, rng.Bernoulli(0.2));
    benchmark::DoNotOptimize(est.EstimatedRate());
  }
}
BENCHMARK(BM_EstimatorUpdate_Ratio);

void BM_EstimatorUpdate_Bayesian(benchmark::State& state) {
  estimator::BayesianEstimator est;
  Rng rng(7);
  for (auto _ : state) {
    est.RecordObservation(1.0, rng.Bernoulli(0.2));
    benchmark::DoNotOptimize(est.EstimatedRate());
  }
}
BENCHMARK(BM_EstimatorUpdate_Bayesian);

void BM_PageRankIteration(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  graph::LinkGraph g(n);
  Rng rng(8);
  for (graph::NodeId v = 0; v < n; ++v) {
    for (int e = 0; e < 8; ++e) {
      (void)g.AddEdge(v, static_cast<graph::NodeId>(rng.NextBounded(n)));
    }
  }
  g.Finalize();
  graph::PageRankOptions options;
  options.max_iterations = 10;  // fixed work per run
  options.tolerance = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::ComputePageRank(g, options));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 10 *
                          n);
}
BENCHMARK(BM_PageRankIteration)->Arg(1000)->Arg(50000);

void BM_OptimizerSolve(benchmark::State& state) {
  std::vector<freshness::RateGroup> groups;
  Rng rng(9);
  for (int i = 0; i < state.range(0); ++i) {
    groups.push_back({rng.Exponential(1.0) * 0.1, 100.0});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        freshness::RevisitOptimizer::Optimize(groups, 500.0));
  }
}
BENCHMARK(BM_OptimizerSolve)->Arg(16)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
