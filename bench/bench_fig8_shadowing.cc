// Figure 8 — freshness of the crawler's collection (top) and the
// current collection (bottom) when the collection is shadowed, for (a)
// a steady crawler and (b) a batch-mode crawler; the dashed no-shadowing
// reference is overlaid.

#include <cstdio>

#include "bench/bench_common.h"
#include "freshness/analytic.h"
#include "util/table.h"

int main() {
  using namespace webevo;
  using freshness::CurveKind;

  bench::Banner(
      "Figure 8: freshness under shadowing, steady vs batch",
      "shadowing costs the steady crawler dearly; the batch crawler "
      "barely notices");

  freshness::CurveSpec spec;
  spec.lambda = 2.0;         // per month, exaggerated for visibility
  spec.period = 1.0;
  spec.crawl_window = 0.25;  // batch: first week
  spec.horizon = 3.0;
  spec.samples = 721;

  auto steady_crawler =
      freshness::SteadyShadowingCurve(spec, CurveKind::kCrawlerCollection);
  auto steady_current =
      freshness::SteadyShadowingCurve(spec, CurveKind::kCurrentCollection);
  auto steady_inplace = freshness::SteadyInPlaceCurve(spec);
  auto batch_crawler =
      freshness::BatchShadowingCurve(spec, CurveKind::kCrawlerCollection);
  auto batch_current =
      freshness::BatchShadowingCurve(spec, CurveKind::kCurrentCollection);
  auto batch_inplace = freshness::BatchInPlaceCurve(spec);
  if (!steady_crawler.ok() || !steady_current.ok() ||
      !steady_inplace.ok() || !batch_crawler.ok() ||
      !batch_current.ok() || !batch_inplace.ok()) {
    std::printf("curve generation failed\n");
    return 1;
  }

  std::printf("Figure 8(a) top: steady crawler's (shadow) collection\n%s\n",
              AsciiChart(steady_crawler->time, steady_crawler->freshness,
                         0.0, 1.0)
                  .c_str());
  std::printf(
      "Figure 8(a) bottom: current collection, '*' shadowing vs 'o' "
      "in-place (dashed line of the paper)\n%s\n",
      AsciiChart2(steady_current->time, steady_current->freshness,
                  steady_inplace->freshness, 0.0, 1.0)
          .c_str());
  std::printf("Figure 8(b) top: batch crawler's (shadow) collection\n%s\n",
              AsciiChart(batch_crawler->time, batch_crawler->freshness,
                         0.0, 1.0)
                  .c_str());
  std::printf(
      "Figure 8(b) bottom: current collection, '*' shadowing vs 'o' "
      "in-place\n%s\n",
      AsciiChart2(batch_current->time, batch_current->freshness,
                  batch_inplace->freshness, 0.0, 1.0)
          .c_str());

  TablePrinter table({"configuration", "time-avg freshness"});
  table.AddRow({"steady, in-place",
                TablePrinter::Fmt(freshness::CurveTimeAverage(
                    *steady_inplace, 1.0, 3.0))});
  table.AddRow({"steady, shadowing",
                TablePrinter::Fmt(freshness::CurveTimeAverage(
                    *steady_current, 1.0, 3.0))});
  table.AddRow({"batch, in-place",
                TablePrinter::Fmt(freshness::CurveTimeAverage(
                    *batch_inplace, 1.0, 3.0))});
  table.AddRow({"batch, shadowing",
                TablePrinter::Fmt(freshness::CurveTimeAverage(
                    *batch_current, 1.0, 3.0))});
  std::printf("%s\n", table.ToString().c_str());
  std::printf("paper's observation: the batch crawler's dashed and solid "
              "lines coincide except while crawling; the steady "
              "crawler's never do.\n");
  return 0;
}
