// Ablation: the UpdateModule's design choices from Section 5.3 —
// estimator kind, site-level vs page-level statistics, importance
// weighting, and exploration probes — each toggled on the same
// incremental-crawler workload.

#include <cstdio>
#include <string>

#include "bench/bench_common.h"
#include "crawler/incremental_crawler.h"
#include "simweb/simulated_web.h"
#include "util/table.h"

namespace {

using namespace webevo;

struct Variant {
  std::string name;
  crawler::UpdateModuleConfig update;
};

struct Outcome {
  double freshness = 0.0;
  double stale_age = 0.0;
  uint64_t changes = 0;
  bool ok = false;
};

Outcome Run(const Variant& variant) {
  simweb::WebConfig wc = bench::StudyWeb(0.08, 777);
  simweb::SimulatedWeb web(wc);
  crawler::IncrementalCrawlerConfig config;
  config.collection_capacity =
      static_cast<std::size_t>(1200 * bench::ScaleFromEnv());
  config.crawl_rate_pages_per_day =
      static_cast<double>(config.collection_capacity) / 30.0;
  config.update = variant.update;
  crawler::IncrementalCrawler crawler(&web, config);
  Outcome out;
  out.ok = crawler.Bootstrap(0.0).ok() && crawler.RunUntil(120.0).ok();
  if (!out.ok) return out;
  out.freshness = crawler.tracker().TimeAverage(60.0, 120.0);
  out.stale_age = crawler.MeasureNow().mean_stale_age_days;
  out.changes = crawler.stats().changes_detected;
  return out;
}

}  // namespace

int main() {
  bench::Banner(
      "Ablation: UpdateModule design choices (Section 5.3)",
      "estimator choice, site-level statistics, importance weighting "
      "and exploration all shape freshness");

  std::vector<Variant> variants;
  {
    Variant v{"EB + probes (default)", {}};
    variants.push_back(v);
  }
  {
    Variant v{"EB, no exploration", {}};
    v.update.probe_probability = 0.0;
    variants.push_back(v);
  }
  {
    Variant v{"ratio estimator", {}};
    v.update.estimator_kind = estimator::EstimatorKind::kRatio;
    variants.push_back(v);
  }
  {
    Variant v{"EL (Last-Modified)", {}};
    v.update.estimator_kind = estimator::EstimatorKind::kLastModified;
    variants.push_back(v);
  }
  {
    Variant v{"site-level statistics", {}};
    v.update.site_level_stats = true;
    variants.push_back(v);
  }
  {
    Variant v{"importance-weighted (exp=0.5)", {}};
    v.update.importance_exponent = 0.5;
    variants.push_back(v);
  }
  {
    Variant v{"uniform (fixed frequency)", {}};
    v.update.policy = crawler::RevisitPolicy::kUniform;
    variants.push_back(v);
  }

  TablePrinter table(
      {"variant", "freshness (60-120d)", "mean stale age (d)",
       "changes detected"});
  for (const Variant& variant : variants) {
    Outcome out = Run(variant);
    table.AddRow({variant.name,
                  out.ok ? TablePrinter::Fmt(out.freshness) : "failed",
                  out.ok ? TablePrinter::Fmt(out.stale_age, 1) : "-",
                  out.ok ? TablePrinter::Fmt(
                               static_cast<int64_t>(out.changes))
                         : "-"});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "notes: the calibrated web mixes hopeless sub-daily pages with\n"
      "slow ones, so absolute freshness is capped well below 1; the\n"
      "interesting quantity is the spread across variants. Site-level\n"
      "statistics help when sites are homogeneous (they are not fully,\n"
      "here); EL prices rapid changers correctly from Last-Modified.\n");
  return 0;
}
