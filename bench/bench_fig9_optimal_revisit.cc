// Figure 9 — the freshness-optimal revisit frequency as a function of a
// page's change frequency: it first rises, peaks, then *falls* to zero
// (the paper's counter-intuitive result from [CGM99b]). Also reports
// the freshness gain of the optimal policy over uniform and
// proportional allocations for a web-like rate mix — the 10%-23%
// improvement the paper cites.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "freshness/revisit_optimizer.h"
#include "util/table.h"

int main() {
  using namespace webevo;
  using freshness::RateGroup;
  using freshness::RevisitOptimizer;

  bench::Banner(
      "Figure 9: change frequency vs optimal revisit frequency",
      "optimal f rises with lambda up to a threshold, then decreases; "
      "optimisation buys 10-23% freshness");

  // Dense lambda grid, equal page mass per group; budget = one visit
  // per page per month on average.
  std::vector<RateGroup> grid;
  for (double rate = 1.0 / 256.0; rate <= 16.0; rate *= 1.25) {
    grid.push_back({rate, 1.0});
  }
  const double budget = static_cast<double>(grid.size()) / 30.0;
  auto alloc = RevisitOptimizer::Optimize(grid, budget);
  if (!alloc.ok()) {
    std::printf("optimizer failed: %s\n",
                alloc.status().ToString().c_str());
    return 1;
  }

  std::vector<double> xs, ys;
  double peak_f = 0.0;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    xs.push_back(static_cast<double>(i));  // log-spaced lambda axis
    ys.push_back(alloc->frequency[i]);
    if (alloc->frequency[i] > peak_f) peak_f = alloc->frequency[i];
  }
  std::printf("optimal revisit frequency vs change frequency "
              "(lambda log-spaced %.4f..%.0f /day):\n%s\n",
              grid.front().rate, grid.back().rate,
              AsciiChart(xs, ys, 0.0, peak_f * 1.05).c_str());

  TablePrinter curve({"lambda (/day)", "interval (days)",
                      "optimal f (/day)", "page freshness"});
  for (std::size_t i = 0; i < grid.size(); i += 4) {
    curve.AddRow({TablePrinter::Fmt(grid[i].rate, 4),
                  TablePrinter::Fmt(1.0 / grid[i].rate, 1),
                  TablePrinter::Fmt(alloc->frequency[i], 4),
                  TablePrinter::Fmt(RevisitOptimizer::FreshnessAt(
                      grid[i].rate, alloc->frequency[i]))});
  }
  std::printf("%s\n", curve.ToString().c_str());

  // Policy comparison on the measured-web rate mix (Figure 2a masses).
  std::vector<RateGroup> web_mix = {
      {12.0, 23.0},          // "changed every visit" (sub-daily)
      {1.0 / 3.5, 15.0},     // 1 day - 1 week
      {1.0 / 15.0, 16.0},    // 1 week - 1 month
      {1.0 / 60.0, 16.0},    // 1 - 4 months
      {1.0 / 600.0, 30.0},   // effectively static
  };
  const double web_budget = 100.0 / 30.0;  // monthly sweep
  auto optimal = RevisitOptimizer::Optimize(web_mix, web_budget);
  auto uniform = RevisitOptimizer::Uniform(web_mix, web_budget);
  auto proportional =
      RevisitOptimizer::Proportional(web_mix, web_budget);
  if (!optimal.ok() || !uniform.ok() || !proportional.ok()) {
    std::printf("policy evaluation failed\n");
    return 1;
  }
  TablePrinter policies({"policy", "freshness", "vs uniform"});
  policies.AddRow({"uniform (fixed frequency)",
                   TablePrinter::Fmt(uniform->freshness), "--"});
  policies.AddRow(
      {"proportional to change rate",
       TablePrinter::Fmt(proportional->freshness),
       TablePrinter::Percent(
           proportional->freshness / uniform->freshness - 1.0)});
  policies.AddRow({"optimal [CGM99b]",
                   TablePrinter::Fmt(optimal->freshness),
                   TablePrinter::Percent(
                       optimal->freshness / uniform->freshness - 1.0)});
  std::printf("policy comparison on the Figure 2(a) rate mix "
              "(budget: every page monthly on average):\n%s\n",
              policies.ToString().c_str());
  std::printf("paper: optimisation improves freshness by 10%%-23%%; "
              "proportional can *lose* to uniform (p1/p2 example).\n");
  return 0;
}
