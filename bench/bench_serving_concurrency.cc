// Serving-layer concurrency bench: sustained query throughput of the
// MVCC BatchView read path while the crawler is live.
//
// Two gates, both exercised by CI:
//   1. Determinism: the full chain of published view fingerprints must
//      be identical at 1 and 8 shards (exit non-zero on mismatch) —
//      the serving half of the repo's N = 1 vs N = 8 bit-identity
//      invariant.
//   2. Liveness: M reader threads hammer Acquire/Release while the
//      crawl loop runs; the bench exits non-zero unless every reader
//      completed a nonzero number of queries (a stuck reader or a
//      writer-starved registry fails the smoke).
//
// Each "query" acquires the latest view, scans its sites relation
// (the aggregate a dashboard would render), verifies the view is
// coherent, and releases — so the measured qps prices the whole
// reader contract, not just the refcount bump.
//
// Usage:
//   bench_serving_concurrency [readers...]        (default: 1 2 4 8)
// Env:
//   WEBEVO_SCALE   workload multiplier            (default 1.0)
//   WEBEVO_DAYS    virtual days to crawl per run  (default 12)

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "crawler/incremental_crawler.h"
#include "serving/batch_view.h"
#include "serving/view_registry.h"
#include "simweb/simulated_web.h"
#include "simweb/web_config.h"
#include "util/table.h"

namespace {

using namespace webevo;

double EnvOr(const char* name, double fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return fallback;
  double value = std::atof(raw);
  return value > 0.0 ? value : fallback;
}

crawler::IncrementalCrawlerConfig CrawlConfig(int shards, double scale) {
  crawler::IncrementalCrawlerConfig config;
  config.collection_capacity = static_cast<std::size_t>(1000 * scale);
  config.crawl_rate_pages_per_day =
      static_cast<double>(config.collection_capacity) / 2.0;
  config.freshness_sample_interval_days = 1.0;
  config.crawl_parallelism = shards;
  config.publish_view_every_batches = 1;
  config.crawl.per_site_delay_days = 1e-4;
  config.crawl.enforce_politeness = true;
  return config;
}

simweb::WebConfig Web(double scale) {
  simweb::WebConfig wc = simweb::WebConfig().Scaled(0.1 * scale);
  wc.seed = 19990217;
  wc.max_site_size = 250;
  return wc;
}

/// Runs the crawl at `shards` shards with no readers and returns the
/// registry's fingerprint chain — the determinism gate's probe.
uint64_t ChainAt(int shards, double scale, double days) {
  simweb::SimulatedWeb web(Web(scale));
  crawler::IncrementalCrawler crawl(&web, CrawlConfig(shards, scale));
  if (!crawl.Bootstrap(0.0).ok() || !crawl.RunUntil(days).ok()) {
    std::fprintf(stderr, "determinism run failed at %d shards\n",
                 shards);
    std::exit(2);
  }
  return crawl.views().fingerprint_chain();
}

struct ReaderResult {
  int readers = 0;
  uint64_t queries = 0;
  uint64_t min_per_reader = 0;
  double wall_seconds = 0.0;
  uint64_t views_published = 0;
  uint64_t views_destroyed = 0;
};

/// One crawl run with `readers` concurrent query threads.
ReaderResult RunWithReaders(int readers, double scale, double days) {
  simweb::SimulatedWeb web(Web(scale));
  crawler::IncrementalCrawler crawl(&web, CrawlConfig(2, scale));
  if (!crawl.Bootstrap(0.0).ok()) {
    std::fprintf(stderr, "bootstrap failed\n");
    std::exit(2);
  }
  // Publish the bootstrap state so readers have a view from t = 0.
  crawl.PublishViewNow();

  serving::ViewRegistry& registry = crawl.views();
  std::atomic<bool> stop{false};
  std::vector<uint64_t> counts(static_cast<std::size_t>(readers), 0);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(readers));
  for (int r = 0; r < readers; ++r) {
    threads.emplace_back([&registry, &stop, &counts, r] {
      uint64_t queries = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        serving::ViewRef view = registry.AcquireRef();
        if (!view) continue;
        // The dashboard query: total pages and the hottest site by
        // mean change rate, off the immutable sites relation.
        uint64_t pages = 0;
        double hottest = 0.0;
        for (const serving::SiteRow& site : view->sites) {
          pages += site.pages;
          if (site.mean_est_rate > hottest) {
            hottest = site.mean_est_rate;
          }
        }
        if (pages != view->collection_size) {
          std::fprintf(stderr, "torn view: %llu pages vs size %llu\n",
                       static_cast<unsigned long long>(pages),
                       static_cast<unsigned long long>(
                           view->collection_size));
          std::exit(3);
        }
        ++queries;
      }
      counts[static_cast<std::size_t>(r)] = queries;
    });
  }

  auto start = std::chrono::steady_clock::now();
  if (!crawl.RunUntil(days).ok()) {
    std::fprintf(stderr, "crawl failed\n");
    std::exit(2);
  }
  double wall = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  stop.store(true);
  for (std::thread& thread : threads) thread.join();

  ReaderResult result;
  result.readers = readers;
  result.wall_seconds = wall;
  result.min_per_reader = ~0ull;
  for (uint64_t count : counts) {
    result.queries += count;
    if (count < result.min_per_reader) result.min_per_reader = count;
  }
  result.views_published = crawl.engine().stats().views_published;
  result.views_destroyed = registry.destroyed();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = EnvOr("WEBEVO_SCALE", 1.0);
  const double days = EnvOr("WEBEVO_DAYS", 12.0);
  std::vector<int> reader_counts;
  for (int i = 1; i < argc; ++i) {
    int n = std::atoi(argv[i]);
    if (n > 0) reader_counts.push_back(n);
  }
  if (reader_counts.empty()) reader_counts = {1, 2, 4, 8};

  std::printf("determinism gate: fingerprint chain at 1 vs 8 shards "
              "(%.1f days, scale %.2f)...\n",
              days, scale);
  const uint64_t chain1 = ChainAt(1, scale, days);
  const uint64_t chain8 = ChainAt(8, scale, days);
  if (chain1 != chain8) {
    std::printf("FAIL: view chains diverge (%016llx vs %016llx)\n",
                static_cast<unsigned long long>(chain1),
                static_cast<unsigned long long>(chain8));
    return 1;
  }
  std::printf("ok: chain %016llx at both shard counts\n\n",
              static_cast<unsigned long long>(chain1));

  webevo::TablePrinter table({"readers", "queries", "qps",
                              "min qps/reader", "views", "destroyed",
                              "crawl s"});
  bool starved = false;
  for (int readers : reader_counts) {
    ReaderResult r = RunWithReaders(readers, scale, days);
    if (r.min_per_reader == 0) starved = true;
    table.AddRow(
        {std::to_string(r.readers),
         std::to_string(r.queries),
         webevo::TablePrinter::Fmt(
             static_cast<double>(r.queries) / r.wall_seconds, 0),
         webevo::TablePrinter::Fmt(
             static_cast<double>(r.min_per_reader) / r.wall_seconds, 0),
         std::to_string(r.views_published),
         std::to_string(r.views_destroyed),
         webevo::TablePrinter::Fmt(r.wall_seconds, 2)});
  }
  std::printf("%s", table.ToString().c_str());
  if (starved) {
    std::printf("FAIL: a reader finished zero queries\n");
    return 1;
  }
  std::printf("ok: every reader made progress under the live crawl\n");
  return 0;
}
