// Adversarial-scenario bench: the hostile-web counterpart of
// bench_fault_scenarios. Runs the incremental crawler through the named
// adversarial scenarios (spider traps, mirror farms, domain migrations,
// heavy-tail page sizes) with the defense layer on and off, and gates
// the defense layer's four contracts:
//
//   1. determinism — under every scenario, with the defense on AND off,
//      N = 1 and N = 8 shard runs checkpoint to byte-identical files
//      (the defense-off pair also proves the switch leaves the legacy
//      trajectory untouched);
//   2. resumability — a defense-on checkpoint saved mid-run at N = 8
//      (mid-throttle, mid-quarantine) resumed at N = 1 rejoins the
//      uninterrupted N = 1 trajectory byte for byte;
//   3. graceful degradation — steady-state freshness with the defense
//      on stays within a bounded factor of the clean baseline under
//      spider-trap and mirror-farm webs;
//   4. waste bound — the share of crawls wasted on duplicate content
//      stays bounded with the defense on, versus the undefended run
//      where traps and mirrors consume an ever-growing share.
//
// Usage:
//   bench_adversarial_scenarios [--json <path>] [scenario...]
//                     (default: baseline spider-trap mirror-farm
//                      domain-migration heavy-tail)
// Env:
//   WEBEVO_SCALE                workload multiplier (default 1.0)
//   WEBEVO_DAYS                 virtual days to crawl (default 14)
//   WEBEVO_REQUIRE_ADVERSARIAL_FRESHNESS_RATIO
//                               minimum scenario/baseline freshness
//                               ratio with the defense on (default 0.5;
//                               applied to spider-trap and mirror-farm)
//   WEBEVO_REQUIRE_WASTE_REDUCTION
//                               defense-on wasted share must be at most
//                               this fraction of the defense-off share
//                               (default 0.5; applied when the off-share
//                               exceeds 2% — below that the attack
//                               never bit at this scale)
//
// Exits non-zero on any determinism, resume, freshness, or waste gate
// failure — the CI robustness smoke relies on that.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "crawler/incremental_crawler.h"
#include "crawler/snapshot.h"
#include "simweb/simulated_web.h"
#include "simweb/web_config.h"
#include "util/table.h"

namespace {

using namespace webevo;

double EnvOr(const char* name, double fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return fallback;
  double value = std::atof(raw);
  return value > 0.0 ? value : fallback;
}

simweb::WebConfig ScenarioWeb(const std::string& scenario, double scale) {
  simweb::WebConfig wc = simweb::WebConfig().Scaled(0.06 * scale);
  wc.seed = 19990217;
  wc.max_site_size = 120;
  Status st = simweb::ApplyAdversarialScenario(scenario, &wc);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    std::exit(2);
  }
  return wc;
}

crawler::IncrementalCrawlerConfig CrawlerConfig(int shards,
                                                bool defense) {
  crawler::IncrementalCrawlerConfig config;
  config.collection_capacity = 1000;
  config.crawl_rate_pages_per_day = 500.0;
  config.freshness_sample_interval_days = 0.5;
  config.crawl_parallelism = shards;
  config.crawl.per_site_delay_days = 1e-4;
  config.crawl.enforce_politeness = true;
  config.defense_enabled = defense;
  return config;
}

struct RunResult {
  std::string checkpoint;  // canonical bytes: the determinism fingerprint
  double freshness = 0.0;  // time-averaged over the second half
  uint64_t crawls = 0;
  uint64_t wasted_fetches = 0;
  uint64_t trap_sites_throttled = 0;
  uint64_t duplicate_urls_suppressed = 0;
  uint64_t pages_migrated = 0;
  double WastedShare() const {
    return crawls > 0
               ? static_cast<double>(wasted_fetches) /
                     static_cast<double>(crawls)
               : 0.0;
  }
};

std::string CheckpointBytes(const crawler::IncrementalCrawler& crawl) {
  crawler::CrawlerCheckpointOptions options;
  options.include_web = true;
  std::ostringstream out;
  Status st = crawler::SaveCrawler(crawl, out, options);
  if (!st.ok()) {
    std::fprintf(stderr, "save failed: %s\n", st.ToString().c_str());
    std::exit(2);
  }
  return out.str();
}

RunResult RunOnce(const std::string& scenario, int shards, bool defense,
                  double scale, double days) {
  simweb::SimulatedWeb web(ScenarioWeb(scenario, scale));
  crawler::IncrementalCrawler crawl(&web,
                                    CrawlerConfig(shards, defense));
  if (!crawl.Bootstrap(0.0).ok() || !crawl.RunUntil(days).ok()) {
    std::fprintf(stderr, "run failed (%s, N=%d, defense=%d)\n",
                 scenario.c_str(), shards, defense ? 1 : 0);
    std::exit(2);
  }
  RunResult r;
  r.checkpoint = CheckpointBytes(crawl);
  r.freshness = crawl.tracker().TimeAverage(days / 2, days);
  const auto& s = crawl.stats();
  r.crawls = s.crawls;
  r.wasted_fetches = s.wasted_fetches;
  r.trap_sites_throttled = s.trap_sites_throttled;
  r.duplicate_urls_suppressed = s.duplicate_urls_suppressed;
  r.pages_migrated = s.pages_migrated;
  return r;
}

// Save at N=8 half way through (mid-throttle, mid-quarantine), resume
// at N=1, finish — must match the uninterrupted N=1 run byte for byte
// (the defense section carries throttle levels, quarantine clocks, and
// the fingerprint registry across the restart).
bool ResumeRejoins(const std::string& scenario, double scale, double days,
                   const std::string& want) {
  simweb::SimulatedWeb web_save(ScenarioWeb(scenario, scale));
  crawler::IncrementalCrawler saver(&web_save, CrawlerConfig(8, true));
  if (!saver.Bootstrap(0.0).ok() || !saver.RunUntil(days / 2).ok()) {
    std::fprintf(stderr, "resume-save run failed (%s)\n",
                 scenario.c_str());
    std::exit(2);
  }
  const std::string mid = CheckpointBytes(saver);

  simweb::SimulatedWeb web_load(ScenarioWeb(scenario, scale));
  crawler::IncrementalCrawler resumed(&web_load, CrawlerConfig(1, true));
  std::istringstream mid_in(mid);
  Status loaded = crawler::LoadCrawler(mid_in, &resumed);
  if (!loaded.ok()) {
    std::fprintf(stderr, "resume load failed (%s): %s\n",
                 scenario.c_str(), loaded.ToString().c_str());
    std::exit(2);
  }
  if (!resumed.RunUntil(days).ok()) {
    std::fprintf(stderr, "resumed run failed (%s)\n", scenario.c_str());
    std::exit(2);
  }
  return CheckpointBytes(resumed) == want;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Banner(
      "Adversarial scenarios: crawler defenses and graceful degradation",
      "an incremental crawler must keep its collection fresh even when "
      "parts of the web are actively hostile (spider traps, mirror "
      "farms, domain migrations)");

  std::vector<std::string> scenarios;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--json requires a path\n");
        return 2;
      }
      json_path = argv[++i];
      continue;
    }
    scenarios.push_back(argv[i]);
  }
  if (scenarios.empty()) {
    scenarios = {"baseline", "spider-trap", "mirror-farm",
                 "domain-migration", "heavy-tail"};
  }

  const double scale = bench::ScaleFromEnv();
  const double days = EnvOr("WEBEVO_DAYS", 14.0);
  const double freshness_ratio =
      EnvOr("WEBEVO_REQUIRE_ADVERSARIAL_FRESHNESS_RATIO", 0.5);
  const double waste_reduction =
      EnvOr("WEBEVO_REQUIRE_WASTE_REDUCTION", 0.5);
  std::printf("scale %.2f, %.0f virtual days, freshness gate %.2fx "
              "baseline, waste gate %.2fx undefended\n\n",
              scale, days, freshness_ratio, waste_reduction);

  struct ScenarioResult {
    std::string name;
    RunResult on;   // defense enabled, N=1
    RunResult off;  // defense disabled, N=1
    bool identical_on = false;
    bool identical_off = false;
    bool resumed = false;
  };
  std::vector<ScenarioResult> results;
  double baseline_freshness = -1.0;
  bool all_ok = true;

  for (const std::string& scenario : scenarios) {
    ScenarioResult sr;
    sr.name = scenario;
    sr.on = RunOnce(scenario, 1, true, scale, days);
    RunResult on8 = RunOnce(scenario, 8, true, scale, days);
    sr.identical_on = sr.on.checkpoint == on8.checkpoint;
    sr.off = RunOnce(scenario, 1, false, scale, days);
    RunResult off8 = RunOnce(scenario, 8, false, scale, days);
    sr.identical_off = sr.off.checkpoint == off8.checkpoint;
    sr.resumed =
        ResumeRejoins(scenario, scale, days, sr.on.checkpoint);
    if (scenario == "baseline" || scenario == "none") {
      baseline_freshness = sr.on.freshness;
    }
    all_ok = all_ok && sr.identical_on && sr.identical_off && sr.resumed;
    results.push_back(std::move(sr));
  }

  TablePrinter table({"scenario", "crawls", "wasted", "throttled",
                      "suppressed", "migrated", "waste on", "waste off",
                      "freshness", "N1==N8", "off ==", "resume"});
  for (const ScenarioResult& sr : results) {
    const RunResult& r = sr.on;
    table.AddRow(
        {sr.name, TablePrinter::Fmt(static_cast<int64_t>(r.crawls)),
         TablePrinter::Fmt(static_cast<int64_t>(r.wasted_fetches)),
         TablePrinter::Fmt(
             static_cast<int64_t>(r.trap_sites_throttled)),
         TablePrinter::Fmt(
             static_cast<int64_t>(r.duplicate_urls_suppressed)),
         TablePrinter::Fmt(static_cast<int64_t>(r.pages_migrated)),
         TablePrinter::Fmt(r.WastedShare(), 4),
         TablePrinter::Fmt(sr.off.WastedShare(), 4),
         TablePrinter::Fmt(r.freshness, 4),
         sr.identical_on ? "yes" : "NO", sr.identical_off ? "yes" : "NO",
         sr.resumed ? "yes" : "NO"});
  }
  std::printf("%s\n", table.ToString().c_str());

  // Graceful-degradation gate: with the defense on, traps and mirrors
  // must not crater steady-state freshness. Domain migration and
  // heavy-tail are exempt from the hard gate: a migrating web retires
  // real content by construction, and heavy-tail only stresses fetch
  // cost, not freshness.
  bool freshness_ok = true;
  if (baseline_freshness > 0.0) {
    for (const ScenarioResult& sr : results) {
      if (sr.name != "spider-trap" && sr.name != "mirror-farm") continue;
      if (sr.on.freshness < freshness_ratio * baseline_freshness) {
        std::fprintf(stderr,
                     "FAIL: %s freshness %.4f < %.2f x baseline %.4f\n",
                     sr.name.c_str(), sr.on.freshness, freshness_ratio,
                     baseline_freshness);
        freshness_ok = false;
      }
    }
  }
  all_ok = all_ok && freshness_ok;

  // Waste gate: where the undefended crawl loses a nontrivial share of
  // its budget to duplicate content (traps and mirrors), the defended
  // crawl must reclaim most of it. The 2% floor skips scenarios the
  // attack never reached at this scale.
  bool waste_ok = true;
  for (const ScenarioResult& sr : results) {
    if (sr.name != "spider-trap" && sr.name != "mirror-farm") continue;
    const double off_share = sr.off.WastedShare();
    const double on_share = sr.on.WastedShare();
    if (off_share >= 0.02 && on_share > waste_reduction * off_share) {
      std::fprintf(
          stderr,
          "FAIL: %s defended waste share %.4f > %.2f x undefended "
          "%.4f\n",
          sr.name.c_str(), on_share, waste_reduction, off_share);
      waste_ok = false;
    }
  }
  all_ok = all_ok && waste_ok;

  if (!json_path.empty()) {
    std::ostringstream js;
    js.precision(17);
    js << "{\n"
       << "  \"bench\": \"adversarial_scenarios\",\n"
       << "  \"scale\": " << scale << ",\n"
       << "  \"days\": " << days << ",\n"
       << "  \"baseline_freshness\": " << baseline_freshness << ",\n"
       << "  \"scenarios\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
      const ScenarioResult& sr = results[i];
      const RunResult& r = sr.on;
      js << "    {\"name\": \"" << sr.name << "\", \"crawls\": "
         << r.crawls << ", \"wasted_fetches\": " << r.wasted_fetches
         << ", \"trap_sites_throttled\": " << r.trap_sites_throttled
         << ",\n     \"duplicate_urls_suppressed\": "
         << r.duplicate_urls_suppressed
         << ", \"pages_migrated\": " << r.pages_migrated
         << ", \"wasted_share_on\": " << r.WastedShare()
         << ", \"wasted_share_off\": " << sr.off.WastedShare()
         << ",\n     \"freshness\": " << r.freshness
         << ", \"shard_identical\": "
         << (sr.identical_on ? "true" : "false")
         << ", \"shard_identical_defense_off\": "
         << (sr.identical_off ? "true" : "false")
         << ", \"resume_identical\": "
         << (sr.resumed ? "true" : "false") << "}"
         << (i + 1 < results.size() ? "," : "") << "\n";
    }
    js << "  ],\n"
       << "  \"all_ok\": " << (all_ok ? "true" : "false") << "\n"
       << "}\n";
    std::ofstream out(json_path);
    out << js.str();
    out.close();
    if (!out.good()) {
      std::fprintf(stderr, "FAIL: cannot write %s\n", json_path.c_str());
      return 2;
    }
    std::printf("json: wrote %s\n", json_path.c_str());
  }

  if (!all_ok) {
    std::fprintf(stderr, "FAIL: an adversarial-scenario gate failed\n");
    return 1;
  }
  std::printf("all scenarios: deterministic across shard counts and "
              "defense modes, resumable mid-throttle, freshness and "
              "waste bounded\n");
  return 0;
}
