// Fault-scenario bench: the robustness counterpart of
// bench_sharded_scaling. Runs the incremental crawler through the named
// fault scenarios (baseline, transient errors + timeouts, outage
// storms, permanent site death, flash crowds) and gates the failure
// pipeline's three contracts:
//
//   1. determinism — under every scenario, N = 1 and N = 8 shard runs
//      checkpoint to byte-identical files, and a checkpoint saved
//      mid-run at N = 8 (mid-backoff, mid-quarantine) resumed at N = 1
//      rejoins the uninterrupted N = 1 trajectory byte for byte;
//   2. estimator hygiene — failed fetches land in the failure ledger
//      (failures_recorded) and never in the visit evidence the change
//      estimators consume (visits_recorded == successful crawls);
//   3. graceful degradation — steady-state freshness under faults stays
//      within a bounded factor of the fault-free baseline instead of
//      collapsing (retry storms against dark sites would do that).
//
// Usage:
//   bench_fault_scenarios [--json <path>] [scenario...]
//                     (default: baseline transient10 outage-storm
//                      site-death flash-crowd)
// Env:
//   WEBEVO_SCALE                workload multiplier (default 1.0)
//   WEBEVO_DAYS                 virtual days to crawl (default 14)
//   WEBEVO_REQUIRE_FRESHNESS_RATIO  minimum scenario/baseline freshness
//                               ratio (default 0.5; site-death is
//                               exempt — dead sites cap reachable
//                               freshness by construction)
//
// Exits non-zero on any determinism, resume, estimator, or freshness
// gate failure — the CI robustness smoke relies on that.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "crawler/incremental_crawler.h"
#include "crawler/snapshot.h"
#include "simweb/simulated_web.h"
#include "simweb/web_config.h"
#include "util/table.h"

namespace {

using namespace webevo;

double EnvOr(const char* name, double fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return fallback;
  double value = std::atof(raw);
  return value > 0.0 ? value : fallback;
}

simweb::WebConfig ScenarioWeb(const std::string& scenario, double scale) {
  simweb::WebConfig wc = simweb::WebConfig().Scaled(0.06 * scale);
  wc.seed = 19990217;
  wc.max_site_size = 120;
  Status st = simweb::ApplyFaultScenario(scenario, &wc);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    std::exit(2);
  }
  return wc;
}

crawler::IncrementalCrawlerConfig CrawlerConfig(int shards) {
  crawler::IncrementalCrawlerConfig config;
  config.collection_capacity = 1000;
  config.crawl_rate_pages_per_day = 500.0;
  config.freshness_sample_interval_days = 0.5;
  config.crawl_parallelism = shards;
  config.crawl.per_site_delay_days = 1e-4;
  config.crawl.enforce_politeness = true;
  return config;
}

struct RunResult {
  std::string checkpoint;  // canonical bytes: the determinism fingerprint
  double freshness = 0.0;  // time-averaged over the second half
  uint64_t crawls = 0;
  uint64_t fetch_failures = 0;
  uint64_t transient_errors = 0;
  uint64_t timeout_errors = 0;
  uint64_t failure_retries = 0;
  uint64_t sites_quarantined = 0;
  uint64_t urls_retired = 0;
  double backoff_days = 0.0;
  uint64_t politeness_retries = 0;
  uint64_t not_found = 0;
  uint64_t visits_recorded = 0;
  uint64_t failures_recorded = 0;
};

std::string CheckpointBytes(const crawler::IncrementalCrawler& crawl) {
  crawler::CrawlerCheckpointOptions options;
  options.include_web = true;
  std::ostringstream out;
  Status st = crawler::SaveCrawler(crawl, out, options);
  if (!st.ok()) {
    std::fprintf(stderr, "save failed: %s\n", st.ToString().c_str());
    std::exit(2);
  }
  return out.str();
}

RunResult RunOnce(const std::string& scenario, int shards, double scale,
                  double days) {
  simweb::SimulatedWeb web(ScenarioWeb(scenario, scale));
  crawler::IncrementalCrawler crawl(&web, CrawlerConfig(shards));
  if (!crawl.Bootstrap(0.0).ok() || !crawl.RunUntil(days).ok()) {
    std::fprintf(stderr, "run failed (%s, N=%d)\n", scenario.c_str(),
                 shards);
    std::exit(2);
  }
  RunResult r;
  r.checkpoint = CheckpointBytes(crawl);
  r.freshness = crawl.tracker().TimeAverage(days / 2, days);
  const auto& s = crawl.stats();
  r.crawls = s.crawls;
  r.fetch_failures = s.fetch_failures;
  r.transient_errors = s.transient_errors;
  r.timeout_errors = s.timeout_errors;
  r.failure_retries = s.failure_retries;
  r.sites_quarantined = s.sites_quarantined;
  r.urls_retired = s.urls_retired;
  r.backoff_days = s.backoff_days.count() > 0 ? s.backoff_days.sum() : 0.0;
  r.politeness_retries = s.politeness_retries;
  r.not_found = web.not_found_count();
  r.visits_recorded = crawl.update_module().visits_recorded();
  r.failures_recorded = crawl.update_module().failures_recorded();
  return r;
}

// Save at N=8 half way through, resume at N=1, finish — must match the
// uninterrupted N=1 run byte for byte (the failure section carries the
// breakers and their backoff RNG lanes across the restart).
bool ResumeRejoins(const std::string& scenario, double scale, double days,
                   const std::string& want) {
  simweb::SimulatedWeb web_save(ScenarioWeb(scenario, scale));
  crawler::IncrementalCrawler saver(&web_save, CrawlerConfig(8));
  if (!saver.Bootstrap(0.0).ok() || !saver.RunUntil(days / 2).ok()) {
    std::fprintf(stderr, "resume-save run failed (%s)\n",
                 scenario.c_str());
    std::exit(2);
  }
  const std::string mid = CheckpointBytes(saver);

  simweb::SimulatedWeb web_load(ScenarioWeb(scenario, scale));
  crawler::IncrementalCrawler resumed(&web_load, CrawlerConfig(1));
  std::istringstream mid_in(mid);
  Status loaded = crawler::LoadCrawler(mid_in, &resumed);
  if (!loaded.ok()) {
    std::fprintf(stderr, "resume load failed (%s): %s\n",
                 scenario.c_str(), loaded.ToString().c_str());
    std::exit(2);
  }
  if (!resumed.RunUntil(days).ok()) {
    std::fprintf(stderr, "resumed run failed (%s)\n", scenario.c_str());
    std::exit(2);
  }
  return CheckpointBytes(resumed) == want;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Banner(
      "Fault scenarios: determinism and graceful degradation",
      "an incremental crawler must keep its collection fresh even when "
      "parts of the web misbehave (Sections 4-5, robustness)");

  std::vector<std::string> scenarios;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--json requires a path\n");
        return 2;
      }
      json_path = argv[++i];
      continue;
    }
    scenarios.push_back(argv[i]);
  }
  if (scenarios.empty()) {
    scenarios = {"baseline", "transient10", "outage-storm", "site-death",
                 "flash-crowd"};
  }

  const double scale = bench::ScaleFromEnv();
  const double days = EnvOr("WEBEVO_DAYS", 14.0);
  const double freshness_ratio =
      EnvOr("WEBEVO_REQUIRE_FRESHNESS_RATIO", 0.5);
  std::printf("scale %.2f, %.0f virtual days, freshness gate %.2fx "
              "baseline\n\n",
              scale, days, freshness_ratio);

  struct ScenarioResult {
    std::string name;
    RunResult serial;
    bool identical = false;
    bool resumed = false;
    bool estimators_clean = false;
  };
  std::vector<ScenarioResult> results;
  double baseline_freshness = -1.0;
  bool all_ok = true;

  for (const std::string& scenario : scenarios) {
    ScenarioResult sr;
    sr.name = scenario;
    sr.serial = RunOnce(scenario, 1, scale, days);
    RunResult sharded = RunOnce(scenario, 8, scale, days);
    sr.identical = sr.serial.checkpoint == sharded.checkpoint;
    sr.resumed = ResumeRejoins(scenario, scale, days,
                               sr.serial.checkpoint);
    // Every planned slot is a politeness rejection, a classified
    // failure, a 404, or a successful visit; only the last may feed
    // the estimators.
    sr.estimators_clean =
        sr.serial.failures_recorded == sr.serial.fetch_failures &&
        sr.serial.visits_recorded ==
            sr.serial.crawls - sr.serial.politeness_retries -
                sr.serial.fetch_failures - sr.serial.not_found;
    if (scenario == "baseline" || scenario == "none") {
      baseline_freshness = sr.serial.freshness;
    }
    all_ok = all_ok && sr.identical && sr.resumed && sr.estimators_clean;
    results.push_back(std::move(sr));
  }

  TablePrinter table({"scenario", "crawls", "failures", "retries",
                      "quarantined", "retired", "backoff d", "freshness",
                      "N1==N8", "resume", "est clean"});
  for (const ScenarioResult& sr : results) {
    const RunResult& r = sr.serial;
    table.AddRow({sr.name,
                  TablePrinter::Fmt(static_cast<int64_t>(r.crawls)),
                  TablePrinter::Fmt(static_cast<int64_t>(r.fetch_failures)),
                  TablePrinter::Fmt(static_cast<int64_t>(r.failure_retries)),
                  TablePrinter::Fmt(
                      static_cast<int64_t>(r.sites_quarantined)),
                  TablePrinter::Fmt(static_cast<int64_t>(r.urls_retired)),
                  TablePrinter::Fmt(r.backoff_days, 1),
                  TablePrinter::Fmt(r.freshness, 4),
                  sr.identical ? "yes" : "NO",
                  sr.resumed ? "yes" : "NO",
                  sr.estimators_clean ? "yes" : "NO"});
  }
  std::printf("%s\n", table.ToString().c_str());

  // Graceful-degradation gate: transient noise, outages and flash
  // crowds must not crater steady-state freshness. Site death is
  // exempt: permanently dead sites cap reachable freshness by
  // construction, and what the pipeline owes there is retirement (no
  // retry storms), which the quarantine/retired columns show.
  bool freshness_ok = true;
  if (baseline_freshness > 0.0) {
    for (const ScenarioResult& sr : results) {
      if (sr.name == "baseline" || sr.name == "none" ||
          sr.name == "site-death") {
        continue;
      }
      if (sr.serial.freshness < freshness_ratio * baseline_freshness) {
        std::fprintf(stderr,
                     "FAIL: %s freshness %.4f < %.2f x baseline %.4f\n",
                     sr.name.c_str(), sr.serial.freshness,
                     freshness_ratio, baseline_freshness);
        freshness_ok = false;
      }
    }
  }
  all_ok = all_ok && freshness_ok;

  if (!json_path.empty()) {
    std::ostringstream js;
    js.precision(17);
    js << "{\n"
       << "  \"bench\": \"fault_scenarios\",\n"
       << "  \"scale\": " << scale << ",\n"
       << "  \"days\": " << days << ",\n"
       << "  \"baseline_freshness\": " << baseline_freshness << ",\n"
       << "  \"scenarios\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
      const ScenarioResult& sr = results[i];
      const RunResult& r = sr.serial;
      js << "    {\"name\": \"" << sr.name << "\", \"crawls\": "
         << r.crawls << ", \"fetch_failures\": " << r.fetch_failures
         << ", \"transient_errors\": " << r.transient_errors
         << ", \"timeout_errors\": " << r.timeout_errors
         << ",\n     \"failure_retries\": " << r.failure_retries
         << ", \"sites_quarantined\": " << r.sites_quarantined
         << ", \"urls_retired\": " << r.urls_retired
         << ", \"backoff_days\": " << r.backoff_days
         << ",\n     \"freshness\": " << r.freshness
         << ", \"shard_identical\": " << (sr.identical ? "true" : "false")
         << ", \"resume_identical\": " << (sr.resumed ? "true" : "false")
         << ", \"estimators_clean\": "
         << (sr.estimators_clean ? "true" : "false") << "}"
         << (i + 1 < results.size() ? "," : "") << "\n";
    }
    js << "  ],\n"
       << "  \"all_ok\": " << (all_ok ? "true" : "false") << "\n"
       << "}\n";
    std::ofstream out(json_path);
    out << js.str();
    out.close();
    if (!out.good()) {
      std::fprintf(stderr, "FAIL: cannot write %s\n", json_path.c_str());
      return 2;
    }
    std::printf("json: wrote %s\n", json_path.c_str());
  }

  if (!all_ok) {
    std::fprintf(stderr, "FAIL: a fault-scenario gate failed\n");
    return 1;
  }
  std::printf("all scenarios: deterministic across shard counts, "
              "resumable mid-backoff, estimator-clean, freshness "
              "bounded\n");
  return 0;
}
