// Scaling bench for the ShardedCrawlEngine: aggregate crawl throughput
// (pages/sec of wall time) of the incremental crawler at 1/2/4/8
// shards over one synthetic web, plus the engine's headline guarantee —
// the *simulation* output is bit-identical at every shard count.
//
// Usage:
//   bench_sharded_scaling [--phase-breakdown] [--json <path>] [shards...]
//                                           (default shards: 1 2 4 8)
// --phase-breakdown additionally prints per-phase wall-clock totals
// (plan / fetch / apply / measure) per shard count — the Amdahl ledger
// showing the previously serial plan and measure phases shrinking as
// shards grow.
// --json <path> writes the whole table (throughput, phase breakdown,
// pipeline overlap ledger, capacity-lease ledger, determinism verdict)
// as machine-readable JSON, so CI can archive the perf trajectory per
// commit.
//
// Every shard count runs twice — staged pipeline on (the default loop:
// speculative plan extraction and the deferred measure fused into the
// fetch workers) and off (the strictly sequential loop) — and the two
// runs must be the same simulation bit for bit.
// Env:
//   WEBEVO_SCALE            workload multiplier (default 1.0)
//   WEBEVO_BODY_BYTES       synthetic page body size (default 16384)
//   WEBEVO_DAYS             virtual days to crawl (default 20)
//   WEBEVO_REQUIRE_SPEEDUP  if set, exit non-zero unless the best
//                           multi-shard speedup reaches this factor
//   WEBEVO_REQUIRE_BARRIER_SHARE  if set, exit non-zero unless the
//                           apply-barrier share of apply wall-clock
//                           (barrier s / apply s) stays below this
//                           fraction at N = 4 (falls back to the
//                           largest multi-shard run when 4 was not
//                           requested)
//   WEBEVO_REQUIRE_PIPELINE_SPEEDUP  if set, exit non-zero unless
//                           pipelined wall-clock beats non-pipelined
//                           by at least this factor at N = 4 (same
//                           fallback; the phase table is printed on
//                           failure)
//
// Exits non-zero on any cross-shard-count or pipeline-on/off
// determinism mismatch, which is what the CI smoke check
// (`bench_sharded_scaling 1 4`) relies on.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "crawler/incremental_crawler.h"
#include "simweb/simulated_web.h"
#include "simweb/web_config.h"
#include "util/table.h"

namespace {

using namespace webevo;

double EnvOr(const char* name, double fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return fallback;
  double value = std::atof(raw);
  return value > 0.0 ? value : fallback;
}

struct RunResult {
  int shards = 0;
  double wall_seconds = 0.0;
  uint64_t crawls = 0;
  uint64_t batches = 0;
  // Per-phase wall-clock totals over the whole run.
  double plan_seconds = 0.0;
  double fetch_seconds = 0.0;
  double apply_seconds = 0.0;
  double apply_barrier_seconds = 0.0;
  double measure_seconds = 0.0;
  // Determinism fingerprint: every field must match across shard counts
  // bit for bit.
  crawler::CollectionQuality quality;
  uint64_t pages_added = 0;
  uint64_t dead_pages_removed = 0;
  uint64_t changes_detected = 0;
  uint64_t politeness_retries = 0;
  uint64_t in_batch_retries = 0;
  /// Total in-batch politeness retry rounds (deterministic ledger
  /// entry; the per-batch mean shows hot-site skew).
  uint64_t retry_rounds = 0;
  /// Capacity-lease ledger. Budget, settled admissions and settle
  /// evictions are pure functions of the simulation (fingerprinted);
  /// revocations measure how often the optimistic shard leases
  /// overdrew — shard-layout dependent by design, reported but never
  /// fingerprinted (always 0 at N = 1).
  uint64_t lease_budget = 0;
  uint64_t lease_admissions = 0;
  uint64_t lease_revocations = 0;
  uint64_t settle_evictions = 0;
  uint64_t web_fetches = 0;
  uint64_t pages_created = 0;
  /// Pipeline overlap ledger (pipelined runs only). Overlap seconds are
  /// wall-clock the fused stages spent inside fetch workers instead of
  /// on the serial path; speculative-plan and lane counts mirror the
  /// frontier's reconciliation. Lane reuse/invalidation counts are
  /// shard-layout dependent (like lease revocations): reported, never
  /// fingerprinted.
  double measure_overlap_seconds = 0.0;
  double plan_overlap_seconds = 0.0;
  uint64_t pipelined_batches = 0;
  uint64_t speculative_plans = 0;
  uint64_t spec_lanes_reused = 0;
  uint64_t spec_lanes_invalidated = 0;
  /// The paired non-pipelined run at the same shard count.
  double pipeline_off_wall_seconds = 0.0;
  bool pipeline_off_identical = true;
};

RunResult RunOnce(int shards, double scale, double days,
                  uint32_t body_bytes, bool pipeline) {
  simweb::WebConfig wc = simweb::WebConfig().Scaled(0.15 * scale);
  wc.seed = 19990217;
  wc.max_site_size = 250;
  wc.page_body_bytes = body_bytes;
  simweb::SimulatedWeb web(wc);

  crawler::IncrementalCrawlerConfig config;
  config.collection_capacity =
      static_cast<std::size_t>(4000 * scale);
  // Fast steady crawl: ~half the collection per day keeps every
  // rebalance-interval batch a few thousand fetches wide.
  config.crawl_rate_pages_per_day =
      static_cast<double>(config.collection_capacity) / 2.0;
  config.freshness_sample_interval_days = 1.0;
  config.crawl_parallelism = shards;
  config.pipeline = pipeline;
  config.crawl.per_site_delay_days = 1e-4;  // the paper's ~10 seconds
  config.crawl.enforce_politeness = true;

  crawler::IncrementalCrawler crawl(&web, config);
  if (!crawl.Bootstrap(0.0).ok()) {
    std::fprintf(stderr, "bootstrap failed\n");
    std::exit(2);
  }
  auto start = std::chrono::steady_clock::now();
  if (!crawl.RunUntil(days).ok()) {
    std::fprintf(stderr, "run failed\n");
    std::exit(2);
  }
  auto end = std::chrono::steady_clock::now();

  RunResult r;
  r.shards = shards;
  r.wall_seconds = std::chrono::duration<double>(end - start).count();
  r.crawls = crawl.stats().crawls;
  const crawler::ShardedCrawlEngine::Stats& es = crawl.engine().stats();
  r.batches = es.batches;
  r.plan_seconds = es.plan_seconds.sum();
  r.fetch_seconds = es.fetch_seconds.sum();
  r.apply_seconds = es.apply_seconds.sum();
  r.apply_barrier_seconds = es.apply_barrier_seconds.sum();
  r.measure_seconds = es.measure_seconds.sum();
  r.quality = crawl.MeasureNow();
  r.pages_added = crawl.stats().pages_added;
  r.dead_pages_removed = crawl.stats().dead_pages_removed;
  r.changes_detected = crawl.stats().changes_detected;
  r.politeness_retries = crawl.stats().politeness_retries;
  r.in_batch_retries = crawl.stats().in_batch_retries;
  r.retry_rounds = static_cast<uint64_t>(es.retry_rounds.sum() + 0.5);
  r.lease_budget =
      static_cast<uint64_t>(es.lease_admit_budget.sum() + 0.5);
  r.lease_admissions =
      static_cast<uint64_t>(es.lease_admissions.sum() + 0.5);
  r.lease_revocations =
      static_cast<uint64_t>(es.lease_revocations.sum() + 0.5);
  r.settle_evictions =
      static_cast<uint64_t>(es.settle_evictions.sum() + 0.5);
  r.web_fetches = web.fetch_count();
  r.pages_created = web.OracleTotalPagesCreated();
  r.measure_overlap_seconds = es.measure_overlap_seconds.sum();
  r.plan_overlap_seconds = es.plan_overlap_seconds.sum();
  r.pipelined_batches = es.pipelined_batches;
  r.speculative_plans = es.speculative_plans;
  r.spec_lanes_reused =
      static_cast<uint64_t>(es.spec_lanes_reused.sum() + 0.5);
  r.spec_lanes_invalidated =
      static_cast<uint64_t>(es.spec_lanes_invalidated.sum() + 0.5);
  return r;
}

bool SameSimulation(const RunResult& a, const RunResult& b) {
  return a.crawls == b.crawls && a.quality.freshness == b.quality.freshness &&
         a.quality.mean_stale_age_days == b.quality.mean_stale_age_days &&
         a.quality.size == b.quality.size &&
         a.quality.fresh == b.quality.fresh &&
         a.quality.dead == b.quality.dead &&
         a.pages_added == b.pages_added &&
         a.dead_pages_removed == b.dead_pages_removed &&
         a.changes_detected == b.changes_detected &&
         a.politeness_retries == b.politeness_retries &&
         a.in_batch_retries == b.in_batch_retries &&
         a.retry_rounds == b.retry_rounds &&
         a.lease_budget == b.lease_budget &&
         a.lease_admissions == b.lease_admissions &&
         a.settle_evictions == b.settle_evictions &&
         a.web_fetches == b.web_fetches &&
         a.pages_created == b.pages_created;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Banner(
      "Sharded crawl engine: throughput scaling",
      "multiple CrawlModule's may run in parallel, depending on how "
      "fast we need to crawl pages (Section 5.3)");

  std::vector<int> shard_counts;
  bool phase_breakdown = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--phase-breakdown") {
      phase_breakdown = true;
      continue;
    }
    if (std::string(argv[i]) == "--json") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--json requires a path\n");
        return 2;
      }
      json_path = argv[++i];
      continue;
    }
    int n = std::atoi(argv[i]);
    if (n > 0) shard_counts.push_back(n);
  }
  if (shard_counts.empty()) shard_counts = {1, 2, 4, 8};

  const double scale = bench::ScaleFromEnv();
  const double days = EnvOr("WEBEVO_DAYS", 20.0);
  const auto body_bytes =
      static_cast<uint32_t>(EnvOr("WEBEVO_BODY_BYTES", 16384.0));
  std::printf("scale %.2f, %.0f virtual days, %u-byte bodies, %u cores\n\n",
              scale, days, body_bytes,
              std::thread::hardware_concurrency());

  std::vector<RunResult> results;
  results.reserve(shard_counts.size());
  for (int shards : shard_counts) {
    // Pipelined run (the default loop) is the headline result; the
    // paired non-pipelined run provides the on/off columns and the
    // on-vs-off determinism check.
    RunResult on = RunOnce(shards, scale, days, body_bytes, true);
    RunResult off = RunOnce(shards, scale, days, body_bytes, false);
    on.pipeline_off_wall_seconds = off.wall_seconds;
    on.pipeline_off_identical = SameSimulation(on, off);
    results.push_back(on);
  }

  const RunResult& base = results.front();
  TablePrinter table({"shards", "crawled pages", "wall s", "pages/s",
                      "speedup", "pipe-off s", "pipe gain",
                      "identical sim"});
  bool all_identical = true;
  double best_speedup = 1.0;
  for (const RunResult& r : results) {
    bool identical = SameSimulation(base, r) && r.pipeline_off_identical;
    all_identical = all_identical && identical;
    double pages_per_sec =
        r.wall_seconds > 0.0 ? static_cast<double>(r.crawls) / r.wall_seconds
                             : 0.0;
    double base_rate = base.wall_seconds > 0.0
                           ? static_cast<double>(base.crawls) /
                                 base.wall_seconds
                           : 0.0;
    double speedup = base_rate > 0.0 ? pages_per_sec / base_rate : 1.0;
    if (r.shards != base.shards) best_speedup = std::max(best_speedup,
                                                         speedup);
    double pipe_gain = r.wall_seconds > 0.0
                           ? r.pipeline_off_wall_seconds / r.wall_seconds
                           : 1.0;
    table.AddRow({std::to_string(r.shards),
                  TablePrinter::Fmt(static_cast<int64_t>(r.crawls)),
                  TablePrinter::Fmt(r.wall_seconds),
                  TablePrinter::Fmt(pages_per_sec, 0),
                  TablePrinter::Fmt(speedup, 2),
                  TablePrinter::Fmt(r.pipeline_off_wall_seconds),
                  TablePrinter::Fmt(pipe_gain, 2),
                  identical ? "yes" : "NO"});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "collection %zu pages, freshness %.4f, %llu pages created\n",
      base.quality.size, base.quality.freshness,
      static_cast<unsigned long long>(base.pages_created));

  // The Amdahl ledger: every phase is shard-parallel now — plan and
  // measure since the ShardedFrontier / sharded measurement, apply
  // since the sharded Collection/UpdateModule lease-protocol apply.
  // The "barrier s" column is the apply phase's remaining serial
  // fraction — the lease/eviction/seq settlement — and should stay a
  // small share of apply at every shard count.
  auto print_phase_table = [&results] {
    std::printf("\nper-phase wall-clock totals (seconds over the run)\n");
    TablePrinter phases({"shards", "batches", "plan s", "fetch s",
                         "apply s", "barrier s", "measure s",
                         "overlap s", "spec plans", "lanes r/i",
                         "retry rounds", "adm/rev/evict",
                         "serial ms/batch"});
    for (const RunResult& r : results) {
      double per_batch_ms =
          r.batches > 0
              ? 1e3 *
                    (r.plan_seconds + r.measure_seconds +
                     r.apply_barrier_seconds) /
                    static_cast<double>(r.batches)
              : 0.0;
      // The lease ledger: settled admissions and evictions are part
      // of the determinism fingerprint; revocations (optimistic lease
      // overdraft clawed back at settle) are shard-layout dependent
      // by design.
      std::string lease = std::to_string(r.lease_admissions) + "/" +
                          std::to_string(r.lease_revocations) + "/" +
                          std::to_string(r.settle_evictions);
      // Fused-stage wall-clock absorbed by the fetch workers, and the
      // frontier's speculative-plan ledger (lanes reused/invalidated
      // at reconcile — shard-layout dependent, like revocations).
      std::string lanes = std::to_string(r.spec_lanes_reused) + "/" +
                          std::to_string(r.spec_lanes_invalidated);
      phases.AddRow({std::to_string(r.shards),
                     TablePrinter::Fmt(static_cast<int64_t>(r.batches)),
                     TablePrinter::Fmt(r.plan_seconds),
                     TablePrinter::Fmt(r.fetch_seconds),
                     TablePrinter::Fmt(r.apply_seconds),
                     TablePrinter::Fmt(r.apply_barrier_seconds),
                     TablePrinter::Fmt(r.measure_seconds),
                     TablePrinter::Fmt(r.measure_overlap_seconds +
                                       r.plan_overlap_seconds),
                     TablePrinter::Fmt(
                         static_cast<int64_t>(r.speculative_plans)),
                     lanes,
                     TablePrinter::Fmt(
                         static_cast<int64_t>(r.retry_rounds)),
                     lease, TablePrinter::Fmt(per_batch_ms, 3)});
    }
    std::printf("%s\n", phases.ToString().c_str());
  };
  if (phase_breakdown) print_phase_table();

  if (!json_path.empty()) {
    // Machine-readable mirror of the tables, one JSON document per
    // invocation, archived by CI per commit so the perf trajectory
    // (and especially the barrier share) is recorded over time.
    std::ostringstream js;
    js.precision(17);
    js << "{\n"
       << "  \"bench\": \"sharded_scaling\",\n"
       << "  \"scale\": " << scale << ",\n"
       << "  \"days\": " << days << ",\n"
       << "  \"body_bytes\": " << body_bytes << ",\n"
       << "  \"hardware_concurrency\": "
       << std::thread::hardware_concurrency() << ",\n"
       << "  \"runs\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
      const RunResult& r = results[i];
      const double pages_per_sec =
          r.wall_seconds > 0.0
              ? static_cast<double>(r.crawls) / r.wall_seconds
              : 0.0;
      const double barrier_share =
          r.apply_seconds > 0.0
              ? r.apply_barrier_seconds / r.apply_seconds
              : 0.0;
      js << "    {\"shards\": " << r.shards << ", \"crawled_pages\": "
         << r.crawls << ", \"wall_seconds\": " << r.wall_seconds
         << ", \"pages_per_second\": " << pages_per_sec
         << ", \"identical_sim\": "
         << (SameSimulation(base, r) ? "true" : "false")
         << ", \"batches\": " << r.batches
         << ",\n     \"phases\": {\"plan_s\": " << r.plan_seconds
         << ", \"fetch_s\": " << r.fetch_seconds << ", \"apply_s\": "
         << r.apply_seconds << ", \"apply_barrier_s\": "
         << r.apply_barrier_seconds << ", \"measure_s\": "
         << r.measure_seconds << "},\n     \"barrier_share\": "
         << barrier_share << ", \"retry_rounds\": " << r.retry_rounds
         << ",\n     \"lease\": {\"admit_budget\": " << r.lease_budget
         << ", \"admissions\": " << r.lease_admissions
         << ", \"revocations\": " << r.lease_revocations
         << ", \"settle_evictions\": " << r.settle_evictions << "}"
         << ",\n     \"pipeline\": {\"off_wall_seconds\": "
         << r.pipeline_off_wall_seconds << ", \"off_identical\": "
         << (r.pipeline_off_identical ? "true" : "false")
         << ", \"measure_overlap_s\": " << r.measure_overlap_seconds
         << ", \"plan_overlap_s\": " << r.plan_overlap_seconds
         << ",\n       \"pipelined_batches\": " << r.pipelined_batches
         << ", \"speculative_plans\": " << r.speculative_plans
         << ", \"spec_lanes_reused\": " << r.spec_lanes_reused
         << ", \"spec_lanes_invalidated\": " << r.spec_lanes_invalidated
         << "}}" << (i + 1 < results.size() ? "," : "") << "\n";
    }
    js << "  ],\n"
       << "  \"all_identical\": " << (all_identical ? "true" : "false")
       << ",\n"
       << "  \"best_speedup\": " << best_speedup << "\n"
       << "}\n";
    std::ofstream out(json_path);
    out << js.str();
    out.close();  // flush before checking: buffered errors surface here
    if (!out.good()) {
      std::fprintf(stderr, "FAIL: cannot write %s\n", json_path.c_str());
      return 2;
    }
    std::printf("json: wrote %s\n", json_path.c_str());
  }

  if (!all_identical) {
    std::fprintf(stderr,
                 "FAIL: simulation output varies with shard count\n");
    return 1;
  }
  std::printf("determinism: identical simulation at every shard count\n");

  const char* require = std::getenv("WEBEVO_REQUIRE_SPEEDUP");
  if (require != nullptr) {
    double target = std::atof(require);
    if (best_speedup + 1e-9 < target) {
      std::fprintf(stderr, "FAIL: best speedup %.2f < required %.2f\n",
                   best_speedup, target);
      return 1;
    }
  }

  const char* share_req = std::getenv("WEBEVO_REQUIRE_BARRIER_SHARE");
  if (share_req != nullptr) {
    // Gate the serial fraction of apply: the lease protocol's whole
    // point is that the barrier is a settlement step, not a slot walk.
    // Evaluated at N = 4 (the hosted-runner core count); falls back to
    // the largest multi-shard run when 4 was not requested.
    const double limit = std::atof(share_req);
    const RunResult* gated = nullptr;
    for (const RunResult& r : results) {
      if (r.shards == 4) gated = &r;
    }
    if (gated == nullptr) {
      for (const RunResult& r : results) {
        if (r.shards > 1 &&
            (gated == nullptr || r.shards > gated->shards)) {
          gated = &r;
        }
      }
    }
    if (gated != nullptr && gated->apply_seconds > 0.0) {
      const double share =
          gated->apply_barrier_seconds / gated->apply_seconds;
      if (share >= limit) {
        if (!phase_breakdown) print_phase_table();
        std::fprintf(stderr,
                     "FAIL: apply-barrier share %.3f (%.4fs / %.4fs) at "
                     "N=%d >= limit %.3f\n(phase breakdown above)\n",
                     share, gated->apply_barrier_seconds,
                     gated->apply_seconds, gated->shards, limit);
        return 1;
      }
      std::printf("barrier share at N=%d: %.3f (limit %.3f)\n",
                  gated->shards, share, limit);
    }
  }

  const char* pipe_req = std::getenv("WEBEVO_REQUIRE_PIPELINE_SPEEDUP");
  if (pipe_req != nullptr) {
    // Gate the pipeline's whole point: fusing the speculative plan
    // extraction and the deferred measure into the fetch workers must
    // make the pipelined run faster than the sequential loop (ratio
    // off/on >= the env factor; 1 means strictly faster). Evaluated at
    // N = 4, like the barrier gate, with the same fallback.
    const double target = std::atof(pipe_req);
    const RunResult* gated = nullptr;
    for (const RunResult& r : results) {
      if (r.shards == 4) gated = &r;
    }
    if (gated == nullptr) {
      for (const RunResult& r : results) {
        if (r.shards > 1 &&
            (gated == nullptr || r.shards > gated->shards)) {
          gated = &r;
        }
      }
    }
    if (gated != nullptr && gated->wall_seconds > 0.0) {
      const double gain =
          gated->pipeline_off_wall_seconds / gated->wall_seconds;
      if (gain <= target - 1e-9 ||
          gated->pipeline_off_wall_seconds <= gated->wall_seconds) {
        if (!phase_breakdown) print_phase_table();
        std::fprintf(stderr,
                     "FAIL: pipeline gain %.3f (off %.4fs / on %.4fs) "
                     "at N=%d below required %.3f\n"
                     "(phase breakdown above)\n",
                     gain, gated->pipeline_off_wall_seconds,
                     gated->wall_seconds, gated->shards, target);
        return 1;
      }
      std::printf("pipeline gain at N=%d: %.3f (required %.3f)\n",
                  gated->shards, gain, target);
    }
  }
  if (std::thread::hardware_concurrency() < 2) {
    std::printf(
        "note: single-core host; wall-clock speedup needs >= 2 cores\n");
  }
  return 0;
}
