// Figure 5 — fraction of pages that neither changed nor disappeared by
// day t, (a) over all domains and (b) per domain. The paper's headline:
// 50% of the web changes in ~50 days; the com domain in ~11 days; gov
// takes ~4 months.

#include <cstdio>

#include "bench/bench_common.h"
#include "experiment/analyzers.h"
#include "util/table.h"

int main() {
  using namespace webevo;
  using namespace webevo::experiment;

  bench::Banner("Figure 5: fraction of pages unchanged by a given day",
                "50% of the web in ~50 days; com ~11 days; gov ~4 months");

  bench::Study study = bench::RunStudy();
  SurvivalResult result =
      AnalyzeSurvival(study.experiment->table(), study.days);

  std::printf("Figure 5(a): survival of the day-0 cohort (%zu pages)\n%s\n",
              result.cohort_size,
              AsciiChart(result.day, result.overall, 0.0, 1.0).c_str());

  TablePrinter table({"series", "paper days to 50%", "measured days"});
  auto fmt_days = [](int d) {
    return d >= 0 ? TablePrinter::Fmt(static_cast<int64_t>(d))
                  : std::string("beyond horizon");
  };
  table.AddRow({"all domains", "~50",
                fmt_days(SurvivalResult::DaysToReach(result.overall,
                                                     0.5))});
  const char* paper_domain[4] = {"~11", "~120 (extrapolated)", "~60-90",
                                 "~120"};
  for (simweb::Domain d : simweb::kAllDomains) {
    int i = static_cast<int>(d);
    table.AddRow({std::string(simweb::DomainName(d)), paper_domain[i],
                  fmt_days(SurvivalResult::DaysToReach(
                      result.by_domain[i], 0.5))});
  }
  std::printf("%s\n", table.ToString().c_str());

  std::printf("Figure 5(b): per-domain curves (sampled every 10 days)\n");
  TablePrinter curves({"day", "all", "com", "edu", "netorg", "gov"});
  for (int day = 0; day < study.days; day += 10) {
    auto idx = static_cast<std::size_t>(day);
    std::vector<std::string> row = {
        TablePrinter::Fmt(static_cast<int64_t>(day)),
        TablePrinter::Fmt(result.overall[idx])};
    for (simweb::Domain d : simweb::kAllDomains) {
      row.push_back(
          TablePrinter::Fmt(result.by_domain[static_cast<int>(d)][idx]));
    }
    curves.AddRow(row);
  }
  std::printf("%s", curves.ToString().c_str());
  return 0;
}
