// webevo_query — table-shaped queries over a crawler checkpoint's
// published BatchView (the serving layer's MVCC read surface).
//
// The tool reconstructs the crawler from a SaveCrawler checkpoint
// (LoadCrawler republishes a BatchView of the restored state), acquires
// that view through the lock-free ViewRegistry reader path, and
// evaluates the query against the view's immutable relations.
//
// Examples:
//   webevo_query pages --from=run.ckpt --where=site=3 --limit=10
//   webevo_query sites --from=run.ckpt --where='pages>=5' --format=csv
//   webevo_query freshness --from=run.ckpt --format=json
//   webevo_query estimates --from=run.ckpt --where='rate>0.1'
//   webevo_query summary --from=run.ckpt
//
// The checkpoint must be queried with the same shape flags it was
// produced with (--capacity, --estimator, --no-shadowing, ...) —
// LoadCrawler validates them, exactly as `webevo_sim crawl --resume`
// does. See docs/QUERY_API.md for the full reference.

#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "crawler/incremental_crawler.h"
#include "crawler/periodic_crawler.h"
#include "crawler/snapshot.h"
#include "serving/batch_view.h"
#include "serving/view_registry.h"
#include "simweb/simulated_web.h"
#include "util/flags.h"
#include "util/table.h"

namespace {

using namespace webevo;

// Printed verbatim by --help; CI diffs it against
// docs/webevo_query_help.txt, so any edit here must regenerate that
// file (cmake --build build --target webevo_query &&
// ./build/webevo_query --help > docs/webevo_query_help.txt).
constexpr const char* kUsage =
    R"(usage: webevo_query <relation> --from=<checkpoint> [flags]

relations (rows in canonical order; see docs/QUERY_API.md):
  pages      one row per stored page            (ascending url identity)
  sites      per-site aggregates                (ascending site)
  freshness  the oracle freshness series        (ascending time)
  estimates  pages with a change-rate estimate  (ascending url identity)
  summary    view identity + deterministic counters, as name/value rows

query flags:
  --from=<path>       SaveCrawler checkpoint to query (required)
  --where=<preds>     comma-separated conjuncts, each <col><op><value>
                      with op one of =  !=  <  <=  >  >=
                      (numeric compare when both sides parse as numbers;
                      site equality scans stop early on sorted rows)
  --columns=<list>    comma-separated output columns (default: all)
  --format=table|csv|json                       (default table)
  --limit=<n>         emit at most n rows       (default 0 = all)

checkpoint shape flags (must match the run that wrote the checkpoint,
exactly as for webevo_sim crawl --resume):
  --crawler=incremental|periodic                (default incremental)
  --seed=<n>          master seed               (default 19990217)
  --scale=<f>         web size multiplier       (default 0.15)
  --capacity=<n>      collection capacity       (default 2000)
  --cycle=<days>      revisit cycle             (default 30)
  --window=<days>     batch window              (default 7; periodic)
  --no-shadowing      periodic crawler updates in place
  --policy=optimal|uniform|proportional         (incremental only)
  --estimator=EB|EP|ratio|naive|EL              (incremental only)
  --faults=<name>     fault scenario: none|transient10|outage-storm|
                      site-death|flash-crowd    (default none)
  --adversarial=<name> adversarial scenario: none|spider-trap|
                      mirror-farm|domain-migration|heavy-tail
                      (default none; composes with --faults)
)";

std::string FmtReal(double v) {
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

std::string FmtCount(uint64_t v) { return std::to_string(v); }

/// One relation materialised as strings: column names plus rows of
/// cells, in the view's canonical order. Numeric-looking cells are
/// emitted raw in JSON; everything else is quoted.
struct ResultSet {
  std::vector<std::string> columns;
  std::vector<std::vector<std::string>> rows;
  /// Index of the `site` column, or -1 — enables the sorted-scan
  /// early exit for site equality predicates.
  int site_column = -1;
};

ResultSet PagesResult(const serving::BatchView& view) {
  ResultSet r;
  r.columns = {"url",        "site",     "slot",     "incarnation",
               "version",    "crawled_at", "importance", "est_rate",
               "out_links"};
  r.site_column = 1;
  for (const serving::PageRow& p : view.pages) {
    r.rows.push_back({p.url.ToString(), FmtCount(p.url.site),
                      FmtCount(p.url.slot), FmtCount(p.url.incarnation),
                      FmtCount(p.version), FmtReal(p.crawled_at),
                      FmtReal(p.importance), FmtReal(p.est_rate),
                      FmtCount(p.out_links)});
  }
  return r;
}

ResultSet SitesResult(const serving::BatchView& view) {
  ResultSet r;
  r.columns = {"site", "pages", "mean_importance", "mean_est_rate",
               "last_crawled_at"};
  r.site_column = 0;
  for (const serving::SiteRow& s : view.sites) {
    r.rows.push_back({FmtCount(s.site), FmtCount(s.pages),
                      FmtReal(s.mean_importance), FmtReal(s.mean_est_rate),
                      FmtReal(s.last_crawled_at)});
  }
  return r;
}

ResultSet FreshnessResult(const serving::BatchView& view) {
  ResultSet r;
  r.columns = {"time", "value"};
  for (const serving::SeriesRow& f : view.freshness) {
    r.rows.push_back({FmtReal(f.time), FmtReal(f.value)});
  }
  return r;
}

ResultSet EstimatesResult(const serving::BatchView& view) {
  ResultSet r;
  r.columns = {"url",  "site",          "slot", "incarnation",
               "rate", "interval_days"};
  r.site_column = 1;
  for (const serving::EstimateRow& e : view.estimates) {
    r.rows.push_back({e.url.ToString(), FmtCount(e.url.site),
                      FmtCount(e.url.slot), FmtCount(e.url.incarnation),
                      FmtReal(e.rate), FmtReal(e.interval_days)});
  }
  return r;
}

ResultSet SummaryResult(const serving::BatchView& view) {
  ResultSet r;
  r.columns = {"name", "value"};
  r.rows.push_back({"crawler", view.crawler});
  r.rows.push_back({"batch", FmtCount(view.batch)});
  r.rows.push_back({"published_at", FmtReal(view.published_at)});
  r.rows.push_back({"collection_size", FmtCount(view.collection_size)});
  r.rows.push_back(
      {"collection_capacity", FmtCount(view.collection_capacity)});
  r.rows.push_back({"frontier_depth", FmtCount(view.frontier_depth)});
  for (const auto& [name, value] : view.summary) {
    r.rows.push_back({name, value});
  }
  return r;
}

/// One `<col><op><value>` conjunct of a --where clause.
struct Predicate {
  int column = -1;
  std::string op;
  std::string value;
  bool numeric = false;  ///< value parses as a number
  double number = 0.0;
};

bool ParseNumber(const std::string& s, double* out) {
  std::istringstream in(s);
  double v = 0.0;
  in >> v;
  if (in.fail() || !in.eof()) return false;
  *out = v;
  return true;
}

/// Splits `clause` on commas and resolves each conjunct against the
/// result's columns. Returns false (with a message) on malformed input.
bool ParsePredicates(const std::string& clause, const ResultSet& result,
                     std::vector<Predicate>* out, std::string* error) {
  std::istringstream in(clause);
  std::string conjunct;
  while (std::getline(in, conjunct, ',')) {
    if (conjunct.empty()) continue;
    // Two-character operators first so "<=" never parses as "<" "=...".
    static const char* kOps[] = {"<=", ">=", "!=", "=", "<", ">"};
    Predicate pred;
    std::size_t at = std::string::npos;
    for (const char* op : kOps) {
      at = conjunct.find(op);
      if (at != std::string::npos) {
        pred.op = op;
        break;
      }
    }
    if (at == std::string::npos || at == 0) {
      *error = "malformed predicate '" + conjunct +
               "' (expected <column><op><value>)";
      return false;
    }
    const std::string column = conjunct.substr(0, at);
    pred.value = conjunct.substr(at + pred.op.size());
    for (std::size_t i = 0; i < result.columns.size(); ++i) {
      if (result.columns[i] == column) {
        pred.column = static_cast<int>(i);
      }
    }
    if (pred.column < 0) {
      *error = "unknown column '" + column + "' in --where";
      return false;
    }
    pred.numeric = ParseNumber(pred.value, &pred.number);
    out->push_back(pred);
  }
  return true;
}

bool Matches(const std::vector<std::string>& row, const Predicate& pred) {
  const std::string& cell = row[static_cast<std::size_t>(pred.column)];
  double cell_number = 0.0;
  if (pred.numeric && ParseNumber(cell, &cell_number)) {
    if (pred.op == "=") return cell_number == pred.number;
    if (pred.op == "!=") return cell_number != pred.number;
    if (pred.op == "<") return cell_number < pred.number;
    if (pred.op == "<=") return cell_number <= pred.number;
    if (pred.op == ">") return cell_number > pred.number;
    return cell_number >= pred.number;
  }
  if (pred.op == "=") return cell == pred.value;
  if (pred.op == "!=") return cell != pred.value;
  if (pred.op == "<") return cell < pred.value;
  if (pred.op == "<=") return cell <= pred.value;
  if (pred.op == ">") return cell > pred.value;
  return cell >= pred.value;
}

/// Applies predicates (with the sorted-site early exit), column
/// projection and the row limit, in place.
bool RunQuery(const FlagParser& flags, ResultSet* result,
              std::string* error) {
  std::vector<Predicate> predicates;
  const std::string where = flags.GetString("where", "");
  if (!where.empty() &&
      !ParsePredicates(where, *result, &predicates, error)) {
    return false;
  }
  // Pushdown: rows are sorted by the site column (when there is one),
  // so a `site=K` conjunct bounds the scan — skip ahead to the first
  // match and stop at the first row past it.
  const Predicate* site_eq = nullptr;
  for (const Predicate& pred : predicates) {
    if (pred.column == result->site_column && pred.op == "=" &&
        pred.numeric) {
      site_eq = &pred;
    }
  }
  const auto limit =
      static_cast<std::size_t>(flags.GetInt("limit", 0));
  std::vector<std::vector<std::string>> kept;
  for (const auto& row : result->rows) {
    if (site_eq != nullptr) {
      double site = 0.0;
      ParseNumber(row[static_cast<std::size_t>(site_eq->column)], &site);
      if (site < site_eq->number) continue;
      if (site > site_eq->number) break;
    }
    bool keep = true;
    for (const Predicate& pred : predicates) {
      if (!Matches(row, pred)) {
        keep = false;
        break;
      }
    }
    if (!keep) continue;
    kept.push_back(row);
    if (limit > 0 && kept.size() >= limit) break;
  }
  result->rows = std::move(kept);

  const std::string columns = flags.GetString("columns", "");
  if (!columns.empty()) {
    std::vector<std::size_t> projection;
    std::istringstream in(columns);
    std::string column;
    while (std::getline(in, column, ',')) {
      bool found = false;
      for (std::size_t i = 0; i < result->columns.size(); ++i) {
        if (result->columns[i] == column) {
          projection.push_back(i);
          found = true;
        }
      }
      if (!found) {
        *error = "unknown column '" + column + "' in --columns";
        return false;
      }
    }
    std::vector<std::string> names;
    for (std::size_t i : projection) names.push_back(result->columns[i]);
    for (auto& row : result->rows) {
      std::vector<std::string> cells;
      for (std::size_t i : projection) cells.push_back(row[i]);
      row = std::move(cells);
    }
    result->columns = std::move(names);
  }
  return true;
}

void PrintTable(const ResultSet& result) {
  TablePrinter table(result.columns);
  for (const auto& row : result.rows) table.AddRow(row);
  std::printf("%s", table.ToString().c_str());
  std::printf("(%zu rows)\n", result.rows.size());
}

void PrintCsv(const ResultSet& result) {
  std::ostringstream os;
  for (std::size_t i = 0; i < result.columns.size(); ++i) {
    os << (i > 0 ? "," : "") << result.columns[i];
  }
  os << '\n';
  for (const auto& row : result.rows) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      os << (i > 0 ? "," : "") << row[i];
    }
    os << '\n';
  }
  std::printf("%s", os.str().c_str());
}

void PrintJson(const ResultSet& result) {
  std::ostringstream os;
  os << "[\n";
  for (std::size_t r = 0; r < result.rows.size(); ++r) {
    os << "  {";
    for (std::size_t i = 0; i < result.rows[r].size(); ++i) {
      const std::string& cell = result.rows[r][i];
      double ignored = 0.0;
      os << (i > 0 ? ", " : "") << '"' << result.columns[i] << "\": ";
      if (ParseNumber(cell, &ignored)) {
        os << cell;
      } else {
        os << '"' << cell << '"';
      }
    }
    os << (r + 1 < result.rows.size() ? "},\n" : "}\n");
  }
  os << "]\n";
  std::printf("%s", os.str().c_str());
}

int Run(const FlagParser& flags) {
  const std::string relation = flags.positional().front();
  const std::string from = flags.GetString("from", "");
  if (from.empty()) {
    std::printf("--from=<checkpoint> is required\n%s", kUsage);
    return 2;
  }

  // Reconstruct the crawler exactly as `webevo_sim crawl --resume`
  // would, with view publishing enabled so LoadCrawler republishes the
  // restored state into the registry.
  simweb::WebConfig web_config =
      simweb::WebConfig().Scaled(flags.GetDouble("scale", 0.15));
  web_config.seed =
      static_cast<uint64_t>(flags.GetInt("seed", 19990217));
  web_config.max_site_size = 250;
  // A checkpoint written under a fault scenario carries per-site fault
  // lanes; restoring them into a faultless web is rejected, so the
  // scenario is a shape flag like --capacity.
  Status fault_st = simweb::ApplyFaultScenario(
      flags.GetString("faults", "none"), &web_config);
  if (!fault_st.ok()) {
    std::printf("%s\n", fault_st.ToString().c_str());
    return 2;
  }
  // Same story for the adversarial lane: a checkpoint written against
  // a spider-trap web must be read against one.
  Status adv_st = simweb::ApplyAdversarialScenario(
      flags.GetString("adversarial", "none"), &web_config);
  if (!adv_st.ok()) {
    std::printf("%s\n", adv_st.ToString().c_str());
    return 2;
  }
  simweb::SimulatedWeb web(web_config);
  const auto capacity =
      static_cast<std::size_t>(flags.GetInt("capacity", 2000));
  const double cycle = flags.GetDouble("cycle", 30.0);

  // The crawlers outlive `view` (a ViewRef releases into its
  // registry, which the owning crawler's engine holds).
  std::unique_ptr<crawler::PeriodicCrawler> periodic;
  std::unique_ptr<crawler::IncrementalCrawler> incremental;
  serving::ViewRef view;
  Status st;
  if (flags.GetString("crawler", "incremental") == "periodic") {
    crawler::PeriodicCrawlerConfig config;
    config.collection_capacity = capacity;
    config.cycle_days = cycle;
    config.crawl_window_days = flags.GetDouble("window", 7.0);
    config.shadowing = !flags.GetBool("no-shadowing", false);
    config.publish_view_every_batches = 1;
    periodic =
        std::make_unique<crawler::PeriodicCrawler>(&web, config);
    st = crawler::LoadCrawlerFromFile(from, periodic.get());
    if (st.ok()) view = periodic->views().AcquireRef();
  } else {
    crawler::IncrementalCrawlerConfig config;
    config.collection_capacity = capacity;
    config.crawl_rate_pages_per_day =
        static_cast<double>(capacity) / cycle;
    std::string policy = flags.GetString("policy", "optimal");
    config.update.policy = policy == "uniform"
                               ? crawler::RevisitPolicy::kUniform
                           : policy == "proportional"
                               ? crawler::RevisitPolicy::kProportional
                               : crawler::RevisitPolicy::kOptimal;
    std::string est = flags.GetString("estimator", "EB");
    config.update.estimator_kind =
        est == "EP"      ? estimator::EstimatorKind::kPoissonCi
        : est == "ratio" ? estimator::EstimatorKind::kRatio
        : est == "naive" ? estimator::EstimatorKind::kNaive
        : est == "EL"    ? estimator::EstimatorKind::kLastModified
                         : estimator::EstimatorKind::kBayesian;
    config.publish_view_every_batches = 1;
    incremental =
        std::make_unique<crawler::IncrementalCrawler>(&web, config);
    st = crawler::LoadCrawlerFromFile(from, incremental.get());
    if (st.ok()) view = incremental->views().AcquireRef();
  }
  if (!st.ok()) {
    std::printf("failed to load %s: %s\n", from.c_str(),
                st.ToString().c_str());
    return 1;
  }
  if (!view) {
    std::printf("no view published for %s\n", from.c_str());
    return 1;
  }

  ResultSet result;
  if (relation == "pages") {
    result = PagesResult(*view);
  } else if (relation == "sites") {
    result = SitesResult(*view);
  } else if (relation == "freshness") {
    result = FreshnessResult(*view);
  } else if (relation == "estimates") {
    result = EstimatesResult(*view);
  } else if (relation == "summary") {
    result = SummaryResult(*view);
  } else {
    std::printf("unknown relation '%s'\n%s", relation.c_str(), kUsage);
    return 2;
  }

  std::string error;
  if (!RunQuery(flags, &result, &error)) {
    std::printf("%s\n", error.c_str());
    return 2;
  }
  const std::string format = flags.GetString("format", "table");
  if (format == "csv") {
    PrintCsv(result);
  } else if (format == "json") {
    PrintJson(result);
  } else if (format == "table") {
    PrintTable(result);
  } else {
    std::printf("unknown format '%s'\n%s", format.c_str(), kUsage);
    return 2;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  Status valid = flags.Validate(
      {"from", "where", "columns", "format", "limit", "crawler", "seed",
       "scale", "capacity", "cycle", "window", "no-shadowing", "policy",
       "estimator", "faults", "adversarial", "help"});
  if (!valid.ok()) {
    std::printf("%s\n%s", valid.ToString().c_str(), kUsage);
    return 2;
  }
  if (flags.GetBool("help", false) || flags.positional().empty()) {
    std::printf("%s", kUsage);
    return flags.positional().empty() && !flags.GetBool("help", false)
               ? 2
               : 0;
  }
  return Run(flags);
}
