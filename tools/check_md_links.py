#!/usr/bin/env python3
"""Fails when any intra-repo markdown link points at a missing file.

Scans every *.md in the repository (tracked directories only), extracts
inline links `[text](target)` and image links, and verifies that each
relative target resolves to an existing file or directory. External
links (http/https/mailto) and pure in-page anchors (#...) are skipped;
a `path#anchor` target is checked for the path part only.

Usage: python3 tools/check_md_links.py [root]
"""

import os
import re
import sys

LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
SKIP_DIRS = {".git", "build", ".github"}
SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://")


def markdown_files(root):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames if d not in SKIP_DIRS]
        for name in sorted(filenames):
            if name.endswith(".md"):
                yield os.path.join(dirpath, name)


def check_file(path, root):
    broken = []
    with open(path, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            for match in LINK_RE.finditer(line):
                target = match.group(1)
                if target.startswith(SKIP_SCHEMES) or target.startswith("#"):
                    continue
                target = target.split("#", 1)[0]
                if not target:
                    continue
                if target.startswith("/"):
                    resolved = os.path.join(root, target.lstrip("/"))
                else:
                    resolved = os.path.join(os.path.dirname(path), target)
                if not os.path.exists(resolved):
                    broken.append((lineno, match.group(1)))
    return broken


def main():
    root = sys.argv[1] if len(sys.argv) > 1 else "."
    failures = 0
    for path in markdown_files(root):
        for lineno, target in check_file(path, root):
            rel = os.path.relpath(path, root)
            print(f"{rel}:{lineno}: broken link -> {target}")
            failures += 1
    if failures:
        print(f"\n{failures} broken intra-repo link(s)")
        return 1
    print("all intra-repo markdown links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
