// webevo_sim — command-line driver for the webevo library.
//
// Three modes:
//   study    re-run the paper's Sections 2-3 measurement campaign and
//            print the Figure 2/4/5 statistics
//   crawl    run one crawler (incremental or periodic) and report its
//            freshness trajectory and load profile
//   compare  run the incremental and the periodic crawler side by side
//            on identical webs (the Figure 10 shoot-out)
//
// Examples:
//   webevo_sim study --days=128 --scale=0.2
//   webevo_sim crawl --crawler=incremental --policy=optimal --days=120
//   webevo_sim crawl --crawler=periodic --window=7 --no-shadowing
//   webevo_sim compare --capacity=2000 --days=150 --csv=out.csv
//
// All runs are deterministic for a given --seed.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "crawler/crawl_module_pool.h"
#include "crawler/incremental_crawler.h"
#include "crawler/periodic_crawler.h"
#include "crawler/snapshot.h"
#include "experiment/analyzers.h"
#include "experiment/csv_export.h"
#include "experiment/monitoring_experiment.h"
#include "simweb/simulated_web.h"
#include "util/flags.h"
#include "util/table.h"

namespace {

using namespace webevo;

constexpr const char* kUsage = R"(usage: webevo_sim <mode> [flags]

modes:
  study     re-run the web-evolution measurement campaign
  crawl     run one crawler and report freshness/load
  compare   incremental vs periodic on identical webs

common flags:
  --seed=<n>        master seed               (default 19990217)
  --scale=<f>       web size multiplier       (default 0.15)
  --days=<n>        simulated days            (default 120)
  --capacity=<n>    collection capacity       (default 2000)
  --csv=<path>      also write the freshness series as CSV
  --faults=<name>   fault scenario: none|transient10|outage-storm|
                    site-death|flash-crowd    (default none)
  --adversarial=<name> adversarial-web scenario: none|spider-trap|
                    mirror-farm|domain-migration|heavy-tail
                    (default none; composes with --faults)
  --defense=on|off  crawler defense layer: diminishing-returns trap
                    throttling, mirror dedup, migration-following
                    (default off; off is byte-identical to a build
                    without the defense layer)
  --parallelism=<n> engine shards / worker threads (default 1;
                    results are bit-identical at any value)
  --pipeline=on|off staged batch pipeline: overlap batch B's fetches
                    with batch B+1's speculative plan extraction and
                    batch B-1's deferred freshness measure (default
                    on; results are bit-identical either way)

study flags:
  --window=<n>      page window per site      (default 300)

crawl flags:
  --crawler=incremental|periodic              (default incremental)
  --policy=optimal|uniform|proportional       (incremental only)
  --estimator=EB|EP|ratio|naive|EL            (incremental only)
  --cycle=<days>    revisit cycle             (default 30)
  --window=<days>   batch window              (default 7; periodic only)
  --no-shadowing    periodic crawler updates in place

checkpoint flags (crawl mode):
  --checkpoint=<path>       write a crash-consistent whole-crawler
                            checkpoint (crawler + web state) at the end
                            of the run
  --checkpoint-every=<K>    also auto-checkpoint every K engine batches
                            (requires --checkpoint)
  --resume=<path>           restore crawler + web from a checkpoint and
                            continue to --days; with the same seed and
                            flags the result is bit-identical to an
                            uninterrupted run (--days on the freshness
                            sample grid); a <path>.deltas log written
                            by --checkpoint-incremental is detected and
                            replayed automatically
  --checkpoint-incremental  O(dirty) checkpoints (incremental crawler
                            only): the first save writes a full base
                            image, every later one appends a sealed
                            delta segment to <path>.deltas instead of
                            rewriting the base (docs/STORAGE.md)
  --checkpoint-traffic      carry the pool's aggregate traffic ledger
                            in checkpoints, so a resumed run's load
                            numbers cover the whole crawl

storage flags (crawl mode):
  --store=map|paged         record-store backend for the collection
                            state (default map; paged spills records
                            to slotted page files — behaviour and
                            checkpoints are bit-identical either way)
  --store-dir=<dir>         scratch directory for --store=paged page
                            files                     (default ".")
)";

bool PipelineFromFlags(const FlagParser& flags) {
  const std::string v = flags.GetString("pipeline", "on");
  if (v == "on") return true;
  if (v == "off") return false;
  std::printf("unknown --pipeline value '%s' (on|off)\n", v.c_str());
  std::exit(2);
}

int ParallelismFromFlags(const FlagParser& flags) {
  const auto n = static_cast<int>(flags.GetInt("parallelism", 1));
  if (n < 1) {
    std::printf("--parallelism must be >= 1\n");
    std::exit(2);
  }
  return n;
}

simweb::WebConfig WebFromFlags(const FlagParser& flags) {
  simweb::WebConfig config =
      simweb::WebConfig().Scaled(flags.GetDouble("scale", 0.15));
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", 19990217));
  config.max_site_size = 250;
  const std::string scenario = flags.GetString("faults", "none");
  Status st = simweb::ApplyFaultScenario(scenario, &config);
  if (!st.ok()) {
    std::printf("%s\n", st.ToString().c_str());
    std::exit(2);
  }
  const std::string adversarial = flags.GetString("adversarial", "none");
  st = simweb::ApplyAdversarialScenario(adversarial, &config);
  if (!st.ok()) {
    std::printf("%s\n", st.ToString().c_str());
    std::exit(2);
  }
  return config;
}

bool DefenseFromFlags(const FlagParser& flags) {
  const std::string v = flags.GetString("defense", "off");
  if (v == "on") return true;
  if (v == "off") return false;
  std::printf("unknown --defense value '%s' (on|off)\n", v.c_str());
  std::exit(2);
}

void MaybeWriteCsv(const FlagParser& flags,
                   const freshness::FreshnessTracker& tracker,
                   const std::string& label) {
  std::string path = flags.GetString("csv", "");
  if (path.empty()) return;
  std::ofstream out(path, std::ios::app);
  for (std::size_t i = 0; i < tracker.size(); ++i) {
    out << label << ',' << tracker.times()[i] << ','
        << tracker.values()[i] << '\n';
  }
  std::printf("appended %zu samples to %s\n", tracker.size(),
              path.c_str());
}

int RunStudy(const FlagParser& flags) {
  simweb::SimulatedWeb web(WebFromFlags(flags));
  experiment::MonitoringConfig config;
  config.num_days = static_cast<int>(flags.GetInt("days", 120));
  config.window_size =
      static_cast<std::size_t>(flags.GetInt("window", 300));
  experiment::MonitoringExperiment experiment(&web, config);
  std::printf("monitoring %u sites for %d days (window %zu)...\n",
              web.num_sites(), config.num_days, config.window_size);
  Status st = experiment.Run();
  if (!st.ok()) {
    std::printf("failed: %s\n", st.ToString().c_str());
    return 1;
  }
  auto change = experiment::AnalyzeChangeIntervals(experiment.table());
  std::printf("\naverage change interval (Figure 2a):\n%s\n",
              change.overall.ToString().c_str());
  auto life =
      experiment::AnalyzeLifespans(experiment.table(), config.num_days);
  std::printf("visible lifespan, Method 1 (Figure 4a):\n%s\n",
              life.method1.ToString().c_str());
  auto survival =
      experiment::AnalyzeSurvival(experiment.table(), config.num_days);
  int half = experiment::SurvivalResult::DaysToReach(survival.overall,
                                                     0.5);
  std::printf("50%% of the day-0 cohort changed/disappeared by day: %d\n",
              half);
  std::string csv_path = flags.GetString("csv", "");
  if (!csv_path.empty()) {
    std::ofstream out(csv_path);
    Status csv = experiment::WritePageStatsCsv(experiment.table(), out);
    std::printf("%s page stats to %s\n",
                csv.ok() ? "wrote" : "FAILED writing", csv_path.c_str());
  }
  return 0;
}

int RunCrawl(const FlagParser& flags) {
  simweb::SimulatedWeb web(WebFromFlags(flags));
  const double days = flags.GetDouble("days", 120);
  const auto capacity =
      static_cast<std::size_t>(flags.GetInt("capacity", 2000));
  const double cycle = flags.GetDouble("cycle", 30.0);
  std::string kind = flags.GetString("crawler", "incremental");
  const std::string checkpoint = flags.GetString("checkpoint", "");
  const std::string resume = flags.GetString("resume", "");
  const auto checkpoint_every =
      static_cast<uint64_t>(flags.GetInt("checkpoint-every", 0));
  if (checkpoint_every > 0 && checkpoint.empty()) {
    std::printf("--checkpoint-every requires --checkpoint=<path>\n");
    return 2;
  }
  const bool checkpoint_incremental =
      flags.GetBool("checkpoint-incremental", false);
  const bool checkpoint_traffic = flags.GetBool("checkpoint-traffic", false);
  if (checkpoint_incremental && kind == "periodic") {
    std::printf("--checkpoint-incremental is incremental-crawler only "
                "(the periodic crawler rewrites its whole collection "
                "every cycle; see snapshot.h)\n");
    return 2;
  }
  const bool defense = DefenseFromFlags(flags);
  if (defense && kind == "periodic") {
    std::printf("--defense=on is incremental-crawler only (the defense "
                "layer lives in the incremental settle path)\n");
    return 2;
  }
  if (checkpoint_incremental && checkpoint.empty()) {
    std::printf("--checkpoint-incremental requires --checkpoint=<path>\n");
    return 2;
  }
  storage::StoreOptions store_options;
  const std::string store_kind = flags.GetString("store", "map");
  if (store_kind == "paged") {
    store_options.backend = storage::StoreOptions::Backend::kPaged;
    store_options.dir = flags.GetString("store-dir", ".");
  } else if (store_kind != "map") {
    std::printf("unknown --store backend '%s' (map|paged)\n",
                store_kind.c_str());
    return 2;
  }
  crawler::CrawlerCheckpointOptions save_options;
  save_options.module_traffic = checkpoint_traffic;

  const freshness::FreshnessTracker* tracker = nullptr;
  const crawler::CrawlModulePool* pool = nullptr;
  crawler::IncrementalCrawler incremental(
      &web, [&] {
        crawler::IncrementalCrawlerConfig c;
        c.collection_capacity = capacity;
        c.crawl_rate_pages_per_day = static_cast<double>(capacity) / cycle;
        c.checkpoint_every_batches = checkpoint_every;
        c.checkpoint_path = checkpoint;
        c.checkpoint_incremental = checkpoint_incremental;
        c.checkpoint_module_traffic = checkpoint_traffic;
        c.store = store_options;
        c.crawl_parallelism = ParallelismFromFlags(flags);
        c.pipeline = PipelineFromFlags(flags);
        c.defense_enabled = defense;
        std::string policy = flags.GetString("policy", "optimal");
        c.update.policy = policy == "uniform"
                              ? crawler::RevisitPolicy::kUniform
                          : policy == "proportional"
                              ? crawler::RevisitPolicy::kProportional
                              : crawler::RevisitPolicy::kOptimal;
        std::string est = flags.GetString("estimator", "EB");
        c.update.estimator_kind =
            est == "EP"      ? estimator::EstimatorKind::kPoissonCi
            : est == "ratio" ? estimator::EstimatorKind::kRatio
            : est == "naive" ? estimator::EstimatorKind::kNaive
            : est == "EL"    ? estimator::EstimatorKind::kLastModified
                             : estimator::EstimatorKind::kBayesian;
        return c;
      }());
  crawler::PeriodicCrawler periodic(&web, [&] {
    crawler::PeriodicCrawlerConfig c;
    c.collection_capacity = capacity;
    c.cycle_days = cycle;
    c.crawl_window_days = flags.GetDouble("window", 7.0);
    c.shadowing = !flags.GetBool("no-shadowing", false);
    c.checkpoint_every_batches = checkpoint_every;
    c.checkpoint_path = checkpoint;
    c.checkpoint_module_traffic = checkpoint_traffic;
    c.store = store_options;
    c.crawl_parallelism = ParallelismFromFlags(flags);
    c.pipeline = PipelineFromFlags(flags);
    return c;
  }());

  Status st;
  if (kind == "periodic") {
    if (!resume.empty()) {
      st = crawler::LoadCrawlerFromFile(resume, &periodic);
      if (st.ok()) {
        std::printf("resumed periodic crawler from %s at day %.2f\n",
                    resume.c_str(), periodic.now());
      }
    } else {
      st = periodic.Bootstrap(0.0);
    }
    if (st.ok()) st = periodic.RunUntil(days);
    if (st.ok() && !checkpoint.empty()) {
      st = crawler::SaveCrawlerToFile(periodic, checkpoint, save_options);
      if (st.ok()) {
        std::printf("checkpointed periodic crawler to %s\n",
                    checkpoint.c_str());
      }
    }
    tracker = &periodic.tracker();
    pool = &periodic.crawl_pool();
  } else {
    if (!resume.empty()) {
      // An adjacent .deltas log means the checkpoint was written by
      // --checkpoint-incremental: restore the base, replay the chain.
      const bool with_deltas =
          static_cast<bool>(std::ifstream(resume + ".deltas"));
      st = with_deltas
               ? crawler::LoadCrawlerWithDeltasFromFile(resume,
                                                        &incremental)
               : crawler::LoadCrawlerFromFile(resume, &incremental);
      if (st.ok()) {
        std::printf("resumed incremental crawler from %s%s at day %.2f\n",
                    resume.c_str(), with_deltas ? " (+deltas)" : "",
                    incremental.now());
      }
    } else {
      st = incremental.Bootstrap(0.0);
    }
    if (st.ok()) st = incremental.RunUntil(days);
    if (st.ok() && !checkpoint.empty()) {
      st = checkpoint_incremental
               ? crawler::CheckpointIncremental(&incremental, checkpoint,
                                                save_options)
               : crawler::SaveCrawlerToFile(incremental, checkpoint,
                                            save_options);
      if (st.ok()) {
        std::printf("checkpointed incremental crawler to %s%s\n",
                    checkpoint.c_str(),
                    checkpoint_incremental ? " (incremental)" : "");
      }
    }
    tracker = &incremental.tracker();
    pool = &incremental.crawl_pool();
  }
  if (!st.ok()) {
    std::printf("failed: %s\n", st.ToString().c_str());
    return 1;
  }
  if (!resume.empty()) {
    std::printf("note: load stats below cover the resumed segment only; "
                "the freshness series is restored in full\n");
  }

  std::printf("freshness over %0.f days (%s crawler):\n%s\n", days,
              kind.c_str(),
              AsciiChart(tracker->times(), tracker->values(), 0.0, 1.0)
                  .c_str());
  TablePrinter table({"metric", "value"});
  table.AddRow({"time-avg freshness (2nd half)",
                TablePrinter::Fmt(tracker->TimeAverage(days / 2, days))});
  // Pool-level aggregate, not module 0's ledger: correct at any
  // parallelism, and — after a --checkpoint-traffic resume — covering
  // the whole crawl, not just the post-resume tail.
  const crawler::CrawlModulePool::Traffic traffic =
      pool->AggregateTraffic();
  table.AddRow({"peak load (pages/day)",
                TablePrinter::Fmt(traffic.PeakDailyRate(), 0)});
  table.AddRow({"avg load (pages/day)",
                TablePrinter::Fmt(traffic.AverageDailyRate(), 0)});
  table.AddRow({"fetches", TablePrinter::Fmt(static_cast<int64_t>(
                               traffic.fetch_count))});
  std::printf("%s", table.ToString().c_str());
  MaybeWriteCsv(flags, *tracker, kind);
  return 0;
}

int RunCompare(const FlagParser& flags) {
  const double days = flags.GetDouble("days", 120);
  const auto capacity =
      static_cast<std::size_t>(flags.GetInt("capacity", 2000));
  const double cycle = flags.GetDouble("cycle", 30.0);

  simweb::SimulatedWeb web_a(WebFromFlags(flags));
  crawler::IncrementalCrawlerConfig inc_config;
  inc_config.collection_capacity = capacity;
  inc_config.crawl_rate_pages_per_day =
      static_cast<double>(capacity) / cycle;
  inc_config.crawl_parallelism = ParallelismFromFlags(flags);
  inc_config.pipeline = PipelineFromFlags(flags);
  // Compare mode only wires the defense into the incremental side;
  // the periodic crawler has no defense layer to switch on.
  inc_config.defense_enabled = DefenseFromFlags(flags);
  crawler::IncrementalCrawler inc(&web_a, inc_config);

  simweb::SimulatedWeb web_b(WebFromFlags(flags));
  crawler::PeriodicCrawlerConfig per_config;
  per_config.collection_capacity = capacity;
  per_config.cycle_days = cycle;
  per_config.crawl_window_days = flags.GetDouble("window", 7.0);
  per_config.crawl_parallelism = ParallelismFromFlags(flags);
  per_config.pipeline = PipelineFromFlags(flags);
  crawler::PeriodicCrawler per(&web_b, per_config);

  if (!inc.Bootstrap(0.0).ok() || !inc.RunUntil(days).ok() ||
      !per.Bootstrap(0.0).ok() || !per.RunUntil(days).ok()) {
    std::printf("simulation failed\n");
    return 1;
  }
  TablePrinter table({"metric", "incremental", "periodic"});
  table.AddRow(
      {"freshness (2nd half)",
       TablePrinter::Fmt(inc.tracker().TimeAverage(days / 2, days)),
       TablePrinter::Fmt(per.tracker().TimeAverage(days / 2, days))});
  table.AddRow({"peak load",
                TablePrinter::Fmt(inc.crawl_module().PeakDailyRate(), 0),
                TablePrinter::Fmt(per.crawl_module().PeakDailyRate(), 0)});
  table.AddRow({"avg load",
                TablePrinter::Fmt(inc.crawl_module().AverageDailyRate(),
                                  0),
                TablePrinter::Fmt(per.crawl_module().AverageDailyRate(),
                                  0)});
  std::printf("%s", table.ToString().c_str());
  MaybeWriteCsv(flags, inc.tracker(), "incremental");
  MaybeWriteCsv(flags, per.tracker(), "periodic");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  Status valid = flags.Validate(
      {"seed", "scale", "days", "capacity", "csv", "faults",
       "adversarial", "defense", "window",
       "crawler", "policy", "estimator", "cycle", "no-shadowing",
       "checkpoint", "checkpoint-every", "checkpoint-incremental",
       "checkpoint-traffic", "resume", "store", "store-dir",
       "parallelism", "pipeline", "help"});
  if (!valid.ok()) {
    std::printf("%s\n%s", valid.ToString().c_str(), kUsage);
    return 2;
  }
  if (flags.GetBool("help", false)) {
    std::printf("%s", kUsage);
    return 0;
  }
  if (flags.positional().empty()) {
    std::printf("%s", kUsage);
    return 2;
  }
  const std::string& mode = flags.positional().front();
  if (mode == "study") return RunStudy(flags);
  if (mode == "crawl") return RunCrawl(flags);
  if (mode == "compare") return RunCompare(flags);
  std::printf("unknown mode '%s'\n%s", mode.c_str(), kUsage);
  return 2;
}
