// webevo_checkpoint — offline inspection of SaveCrawler checkpoint
// containers and their incremental delta logs (docs/STORAGE.md).
//
// `inspect` never reconstructs a crawler: it parses and verifies the
// container framing only (header trailer, per-section length + FNV-64),
// so it works on any checkpoint regardless of the shape flags the run
// was produced with, and is the first tool to reach for when a resume
// refuses a file.
//
// Examples:
//   webevo_checkpoint inspect run.ckpt
//   webevo_checkpoint inspect run.ckpt --sections
//   webevo_checkpoint inspect run.ckpt --deltas=elsewhere.deltas

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "storage/delta_log.h"
#include "util/flags.h"
#include "util/hash.h"
#include "util/status.h"
#include "util/text_snapshot.h"

namespace {

using namespace webevo;

// Printed verbatim by --help; CI diffs it against
// docs/webevo_checkpoint_help.txt, so any edit here must regenerate
// that file (cmake --build build --target webevo_checkpoint &&
// ./build/webevo_checkpoint --help > docs/webevo_checkpoint_help.txt).
constexpr const char* kUsage =
    R"(usage: webevo_checkpoint inspect <checkpoint> [flags]

Verifies and prints a SaveCrawler checkpoint container without
reconstructing the crawler: the header trailer, then every section
against its table length and FNV-64 checksum. Each table row shows the
section's name, byte length, checksum, and the magic + format version
from the section's own header line.

When an incremental delta log exists next to the checkpoint (the
<checkpoint>.deltas write-ahead log of CheckpointIncremental), the
base/delta chain is printed too: one row per sealed segment with its
kind, batch counter, section count and payload bytes. A torn
(unsealed) tail — the crash-between-append-and-seal case that resume
ignores — is reported, not an error.

flags:
  --deltas=<path>     delta log to chain-inspect
                      (default: <checkpoint>.deltas, when it exists)
  --sections          also print each delta segment's section table
  --help              this text

exit status: 0 on a fully verified container (a torn delta tail is
still 0), 1 on corruption or I/O failure, 2 on usage errors.
)";

struct SectionRow {
  std::string name;
  std::size_t bytes = 0;
  uint64_t fnv = 0;
  std::string magic;
  std::string version;
};

// First two whitespace-separated tokens of the section's first line —
// every webevo snapshot stream opens with `<magic> <version> ...`.
void ParseSectionHeader(const std::string& bytes, SectionRow* row) {
  std::istringstream is(bytes);
  std::string line;
  std::getline(is, line);
  std::istringstream ls(line);
  if (!(ls >> row->magic >> row->version)) {
    row->magic = "?";
    row->version = "?";
  }
}

void PrintSectionTable(const std::vector<SectionRow>& rows,
                       const char* indent) {
  std::size_t name_w = 7;
  std::size_t magic_w = 5;
  for (const SectionRow& r : rows) {
    if (r.name.size() > name_w) name_w = r.name.size();
    if (r.magic.size() > magic_w) magic_w = r.magic.size();
  }
  std::printf("%s%-*s %10s %20s  %-*s %s\n", indent,
              static_cast<int>(name_w), "section", "bytes", "fnv64",
              static_cast<int>(magic_w), "magic", "ver");
  for (const SectionRow& r : rows) {
    std::printf("%s%-*s %10zu %20llu  %-*s %s\n", indent,
                static_cast<int>(name_w), r.name.c_str(), r.bytes,
                static_cast<unsigned long long>(r.fnv),
                static_cast<int>(magic_w), r.magic.c_str(),
                r.version.c_str());
  }
}

// Parses and verifies the container exactly as snapshot.cc's reader
// does — header trailer first, then each section against its declared
// length and checksum, then end-of-stream — but keeps the sections as
// opaque bytes instead of restoring a crawler from them.
Status InspectContainer(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path);

  TrailerReader reader(in);
  auto header = reader.Next();
  if (!header.ok()) return header.status();
  std::istringstream hs(*header);
  std::string magic, kind;
  int version = 0;
  std::size_t nsections = 0;
  hs >> magic >> version >> kind >> nsections;
  if (hs.fail() || magic != "webevo-crawler") {
    return Status::InvalidArgument("not a webevo-crawler container: " +
                                   path);
  }
  Status end = ExpectLineEnd(hs, "container header");
  if (!end.ok()) return end;

  std::vector<SectionRow> rows;
  for (std::size_t i = 0; i < nsections; ++i) {
    auto line = reader.Next();
    if (!line.ok()) return line.status();
    std::istringstream ls(*line);
    std::string tag;
    SectionRow row;
    ls >> tag >> row.name >> row.bytes >> row.fnv;
    if (ls.fail() || tag != "S") {
      return Status::InvalidArgument("malformed section-table line");
    }
    end = ExpectLineEnd(ls, "section-table line");
    if (!end.ok()) return end;
    rows.push_back(std::move(row));
  }
  // End of the header block: Next() past the table must consume and
  // verify the trailer (NotFound), leaving the section bytes in `in`.
  auto past = reader.Next();
  if (past.ok() || !reader.done()) {
    return past.ok()
               ? Status::InvalidArgument("trailing data in header")
               : past.status();
  }

  for (SectionRow& row : rows) {
    // Chunked reads, as in the container loader: a crafted
    // table-claimed length must surface as a truncation error, not a
    // giant allocation.
    std::string bytes;
    bytes.reserve(std::min<std::size_t>(row.bytes, 1 << 20));
    std::size_t remaining = row.bytes;
    char buf[1 << 16];
    while (remaining > 0) {
      const std::size_t want = std::min(remaining, sizeof(buf));
      in.read(buf, static_cast<std::streamsize>(want));
      const auto got = static_cast<std::size_t>(in.gcount());
      bytes.append(buf, got);
      if (got < want) {
        return Status::InvalidArgument("section " + row.name +
                                       " truncated");
      }
      remaining -= got;
    }
    if (Fnv1a64(bytes) != row.fnv) {
      return Status::InvalidArgument("section " + row.name +
                                     " checksum mismatch");
    }
    ParseSectionHeader(bytes, &row);
  }
  Status stream_end = ExpectStreamEnd(in, "checkpoint container");
  if (!stream_end.ok()) return stream_end;

  std::printf("%s: kind=%s format=v%d sections=%zu  [verified]\n",
              path.c_str(), kind.c_str(), version, nsections);
  PrintSectionTable(rows, "  ");
  return Status::Ok();
}

Status InspectDeltaChain(const std::string& base_path,
                         const std::string& deltas_path,
                         bool show_sections) {
  auto log = storage::ReadDeltaLog(deltas_path);
  if (!log.ok()) return log.status();
  if (log->segments.empty() && log->torn_tail_bytes == 0) {
    std::printf("\n%s: empty delta log\n", deltas_path.c_str());
    return Status::Ok();
  }
  std::printf("\nchain: base %s + %zu sealed segment%s (%s)\n",
              base_path.c_str(), log->segments.size(),
              log->segments.size() == 1 ? "" : "s",
              deltas_path.c_str());
  std::size_t index = 0;
  for (const storage::DeltaSegment& segment : log->segments) {
    std::size_t payload = 0;
    for (const storage::DeltaSection& s : segment.sections) {
      payload += s.bytes.size();
    }
    std::printf(
        "  segment %zu: kind=%s batch=%llu sections=%zu payload=%zuB\n",
        index++, segment.kind.c_str(),
        static_cast<unsigned long long>(segment.batch),
        segment.sections.size(), payload);
    if (show_sections) {
      std::vector<SectionRow> rows;
      for (const storage::DeltaSection& s : segment.sections) {
        SectionRow row;
        row.name = s.name;
        row.bytes = s.bytes.size();
        row.fnv = Fnv1a64(s.bytes);
        ParseSectionHeader(s.bytes, &row);
        rows.push_back(std::move(row));
      }
      PrintSectionTable(rows, "    ");
    }
  }
  if (log->torn_tail_bytes > 0) {
    std::printf(
        "  torn tail: %llu unsealed byte%s after the last seal "
        "(ignored on resume)\n",
        static_cast<unsigned long long>(log->torn_tail_bytes),
        log->torn_tail_bytes == 1 ? "" : "s");
  }
  return Status::Ok();
}

bool FileExists(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return static_cast<bool>(in);
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  if (flags.GetBool("help", false)) {
    std::fputs(kUsage, stdout);
    return 0;
  }
  Status valid = flags.Validate({"help", "deltas", "sections"});
  if (!valid.ok()) {
    std::fprintf(stderr, "error: %s\n%s", valid.ToString().c_str(),
                 kUsage);
    return 2;
  }
  const std::vector<std::string>& args = flags.positional();
  if (args.size() != 2 || args[0] != "inspect") {
    std::fputs(kUsage, stderr);
    return 2;
  }
  const std::string& path = args[1];

  Status st = InspectContainer(path);
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return 1;
  }

  const std::string deltas =
      flags.GetString("deltas", path + ".deltas");
  if (flags.Has("deltas") || FileExists(deltas)) {
    st = InspectDeltaChain(path, deltas,
                           flags.GetBool("sections", false));
    if (!st.ok()) {
      std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  return 0;
}
